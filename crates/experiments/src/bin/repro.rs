//! `repro` — regenerate the paper's figures and tables, and run
//! arbitrary user scenarios.
//!
//! ```text
//! repro [flags] <artifact>... | all        regenerate registry artifacts
//! repro run [flags] --scenario FILE...     execute scenario-v1 files
//! repro worker [--listen ADDR]             serve work-v1 frames for a
//!                                          coordinator (stdin/stdout or TCP)
//! repro emit-scenario <artifact>... --json DIR
//!                                          dump an artifact's cells as
//!                                          editable scenario files
//! repro diff-timing OLD.json NEW.json      compare two bench-trajectory
//!                                          files, warn on drift
//! repro trace-summarize FILE               aggregate a trace-v1 file into
//!                                          per-kind / per-flow / per-op tables
//! repro [flags] --list                     registry: name, class, workload,
//!                                          seeds, cells
//! repro --verify-json DIR                  validate an emitted JSON directory
//! ```
//!
//! `--trace FILE` turns the flight recorder on for every cell of the
//! batch and writes one `trace-v1` NDJSON file (`--trace-filter`
//! selects events; grammar and event-kind reference: docs/TRACING.md).
//! Trace bytes are a pure function of the configs — byte-identical at
//! any `--jobs` and across any worker fleet.
//!
//! Quick scale runs a k=4 fat-tree (16 hosts) with hundreds of flows —
//! seconds per artifact. `--full` runs the paper's k=6/54-host default
//! with thousands of flows. Poisson-workload artifacts and scenario
//! runs replicate every cell over `--seeds` seeds (default 5) and
//! report mean ± ci95.
//!
//! All requested artifacts (or scenarios) are scheduled as **one global
//! batch**: every simulation cell goes to the `--jobs` workers
//! (default: all cores) in a single submission-ordered queue, so the
//! pool never drains between artifacts. Reports still print in
//! presentation order and are byte-identical at any job count.
//!
//! The batch can also be sharded across worker *processes*:
//! `--workers N` spawns N local `repro worker` children, `--connect
//! HOST:PORT` (repeatable) adds remote workers started with `repro
//! worker --listen ADDR`, and the two compose. Results assemble in
//! submission order, so coordinator output is **byte-identical** to the
//! in-process executor at any fleet size — even when a worker dies
//! mid-batch and its cells are reassigned (`--cell-timeout`,
//! `--quorum` tune the failure policy). A batch the degraded fleet
//! cannot finish reports its partial progress and exits 2.
//! `--json DIR` additionally writes one schema-versioned JSON file per
//! artifact or scenario (format: docs/SCHEMA.md; scenario files:
//! docs/SCENARIOS.md).
//!
//! Timing is determinism-class `timing` and stays out of the artifact
//! envelopes: per-artifact and batch-wide events/sec go to **stderr**,
//! and `--timing-json FILE` writes the same observations as a
//! `bench-trajectory-v1` JSON for the CI's BENCH trend line;
//! `diff-timing` compares two such files (warn-only, for CI
//! annotations).
//!
//! Exit codes: 0 success, 1 verification failure, 2 usage error —
//! including unknown artifact names, unknown flags, and invalid
//! scenario files (every user-reachable config mistake is a typed
//! `ScenarioError`, never a panic).
//!
//! The usage text, flag parsing, and flag error messages all derive
//! from one [`FLAGS`] table, so they cannot drift as modes are added.

use irn_core::Scenario;
use irn_experiments::artifacts::{self, BatchRun, ARTIFACTS};
use irn_experiments::{scenario_json, scenario_plan, Harness, Scale, TelemetrySummary};
use irn_harness::{worker, HarnessError, PoolConfig, WorkerOptions, WorkerPool, WorkerSpec};
use irn_telemetry::{TraceFilter, TraceSpec};
use serde::json::{self, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;

// ---------------------------------------------------------------------
// The flag table: single source for usage text, parsing, and errors
// ---------------------------------------------------------------------

/// One command-line flag: its spelling, value shape, and help line.
struct FlagSpec {
    name: &'static str,
    /// `Some(metavar)` when the flag consumes a value.
    metavar: Option<&'static str>,
    help: &'static str,
}

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--full",
        metavar: None,
        help: "paper scale (k=6 fat-tree, 54 hosts) instead of quick",
    },
    FlagSpec {
        name: "--seeds",
        metavar: Some("N"),
        help: "seed replicates per Poisson/scenario cell (default 5)",
    },
    FlagSpec {
        name: "--jobs",
        metavar: Some("N"),
        help: "worker threads for the global batch (default: all cores)",
    },
    FlagSpec {
        name: "--workers",
        metavar: Some("N"),
        help: "shard the batch across N spawned 'repro worker' processes",
    },
    FlagSpec {
        name: "--connect",
        metavar: Some("ADDR"),
        help: "add a listening worker at HOST:PORT to the fleet; repeatable",
    },
    FlagSpec {
        name: "--cell-timeout",
        metavar: Some("SECS"),
        help: "per-cell worker timeout before reassignment (default 300)",
    },
    FlagSpec {
        name: "--quorum",
        metavar: Some("N"),
        help: "min live workers before the batch is abandoned (default 1)",
    },
    FlagSpec {
        name: "--listen",
        metavar: Some("ADDR"),
        help: "(worker mode) serve coordinators over TCP instead of stdin",
    },
    FlagSpec {
        name: "--exit-after",
        metavar: Some("N"),
        help: "(worker mode) die mid-cell after N answers (fault-injection)",
    },
    FlagSpec {
        name: "--json",
        metavar: Some("DIR"),
        help: "write one schema-v2 JSON envelope per report into DIR",
    },
    FlagSpec {
        name: "--timing-json",
        metavar: Some("FILE"),
        help: "write bench-trajectory-v1 throughput JSON to FILE",
    },
    FlagSpec {
        name: "--memory-json",
        metavar: Some("FILE"),
        help: "write memory-v1 peak-memory gauge JSON to FILE",
    },
    FlagSpec {
        name: "--scenario",
        metavar: Some("FILE"),
        help: "(run mode) scenario-v1 file to execute; repeatable",
    },
    FlagSpec {
        name: "--trace",
        metavar: Some("FILE"),
        help: "record a trace-v1 NDJSON flight-recorder file of the batch",
    },
    FlagSpec {
        name: "--trace-filter",
        metavar: Some("SPEC"),
        help: "event selection for --trace, e.g. kind=pfc.*,flow=3 (docs/TRACING.md)",
    },
    FlagSpec {
        name: "--progress-json",
        metavar: Some("FILE"),
        help: "write fleet-progress-v1 NDJSON events (needs --workers/--connect)",
    },
    FlagSpec {
        name: "--drift-pct",
        metavar: Some("P"),
        help: "(diff modes) warning threshold in percent (default: 20 timing, 10 memory)",
    },
    FlagSpec {
        name: "--fail-on-drift",
        metavar: None,
        help: "(diff modes) exit 1 when drift exceeds the threshold",
    },
    FlagSpec {
        name: "--list",
        metavar: None,
        help: "print the artifact registry and exit",
    },
    FlagSpec {
        name: "--verify-json",
        metavar: Some("DIR"),
        help: "validate every *.json envelope in DIR and exit",
    },
];

const MODES: &[(&str, &str)] = &[
    (
        "repro [flags] <artifact>... | all",
        "regenerate registry artifacts",
    ),
    (
        "repro run [flags] --scenario FILE...",
        "execute scenario-v1 files (positional FILEs work too)",
    ),
    (
        "repro worker [--listen ADDR]",
        "serve work-v1 frames for a coordinator (stdin/stdout or TCP)",
    ),
    (
        "repro emit-scenario <artifact>... --json DIR",
        "dump an artifact's logical cells as editable scenario files",
    ),
    (
        "repro diff-timing OLD.json NEW.json",
        "compare bench-trajectory files; warn on events/sec drift",
    ),
    (
        "repro diff-memory OLD.json NEW.json",
        "compare memory-v1 gauges; warn on bytes/flow drift",
    ),
    (
        "repro trace-summarize FILE",
        "aggregate a trace-v1 file into per-kind / per-flow / per-op tables",
    ),
];

fn usage() -> ! {
    eprintln!("usage:");
    for (synopsis, what) in MODES {
        eprintln!("  {synopsis:<44} {what}");
    }
    eprintln!("flags:");
    for f in FLAGS {
        let head = match f.metavar {
            Some(m) => format!("{} {m}", f.name),
            None => f.name.to_string(),
        };
        eprintln!("  {head:<20} {}", f.help);
    }
    eprintln!("artifacts:");
    for chunk in ARTIFACTS.chunks(8) {
        let names: Vec<&str> = chunk.iter().map(|a| a.name).collect();
        eprintln!("  {}", names.join(" "));
    }
    std::process::exit(2);
}

/// Every malformed-flag path funnels through here: message, usage,
/// exit(2).
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    usage();
}

/// A user-input error where repeating the usage text would bury the
/// message (bad scenario file, unreadable input): message, exit(2).
fn fail_input(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Flags each subcommand accepts. A supplied flag outside its mode's
/// set is a usage error — never silently ignored (a dropped
/// `--timing-json` would read as "timing was captured" when it
/// wasn't). The default artifact mode accepts everything except the
/// entries here marked mode-specific.
const MODE_FLAGS: &[(&str, &[&str])] = &[
    (
        "run",
        &[
            "--full",
            "--seeds",
            "--jobs",
            "--workers",
            "--connect",
            "--cell-timeout",
            "--quorum",
            "--json",
            "--timing-json",
            "--memory-json",
            "--scenario",
            "--trace",
            "--trace-filter",
            "--progress-json",
        ],
    ),
    ("worker", &["--listen", "--exit-after"]),
    ("emit-scenario", &["--full", "--seeds", "--json"]),
    ("diff-timing", &["--drift-pct", "--fail-on-drift"]),
    ("diff-memory", &["--drift-pct", "--fail-on-drift"]),
    ("trace-summarize", &[]),
];

/// Flags only meaningful inside a specific subcommand; rejected in the
/// default artifact mode.
const SUBCOMMAND_ONLY_FLAGS: &[&str] = &[
    "--scenario",
    "--drift-pct",
    "--fail-on-drift",
    "--listen",
    "--exit-after",
];

#[derive(Default)]
struct Args {
    full: bool,
    seeds: Option<usize>,
    jobs: Option<usize>,
    workers: Option<usize>,
    connect: Vec<String>,
    cell_timeout: Option<u64>,
    quorum: Option<usize>,
    listen: Option<String>,
    exit_after: Option<usize>,
    json_dir: Option<PathBuf>,
    timing_json: Option<PathBuf>,
    memory_json: Option<PathBuf>,
    scenarios: Vec<PathBuf>,
    trace: Option<PathBuf>,
    trace_filter: Option<String>,
    progress_json: Option<PathBuf>,
    drift_pct: Option<f64>,
    fail_on_drift: bool,
    list: bool,
    verify_dir: Option<PathBuf>,
    positionals: Vec<String>,
    /// Names of the flags actually supplied, for per-mode validation.
    supplied: Vec<&'static str>,
}

impl Args {
    /// Reject supplied flags outside `allowed` (the active mode's set).
    fn restrict_flags(&self, mode: &str, allowed: &[&str]) {
        for f in &self.supplied {
            if !allowed.contains(f) {
                fail(format_args!("{f} does not apply to the '{mode}' mode"));
            }
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if !arg.starts_with("--") {
            args.positionals.push(arg);
            continue;
        }
        let Some(spec) = FLAGS.iter().find(|f| f.name == arg) else {
            fail(format_args!("unknown flag '{arg}'"));
        };
        args.supplied.push(spec.name);
        let value = spec.metavar.map(|m| {
            it.next()
                .unwrap_or_else(|| fail(format_args!("{} needs {m}", spec.name)))
        });
        match spec.name {
            "--full" => args.full = true,
            "--list" => args.list = true,
            "--seeds" => args.seeds = Some(positive_int(spec, &value.unwrap())),
            "--jobs" => args.jobs = Some(positive_int(spec, &value.unwrap())),
            "--workers" => args.workers = Some(positive_int(spec, &value.unwrap())),
            "--connect" => {
                let addr = value.unwrap();
                // Same parse-time strictness as the numeric flags: a
                // portless address would otherwise surface later as a
                // confusing connection failure mid-coordinator-start.
                if !addr.contains(':') {
                    fail(format_args!("--connect needs HOST:PORT, got '{addr}'"));
                }
                args.connect.push(addr);
            }
            "--cell-timeout" => {
                args.cell_timeout = Some(positive_int(spec, &value.unwrap()) as u64)
            }
            "--quorum" => args.quorum = Some(positive_int(spec, &value.unwrap())),
            "--listen" => args.listen = Some(value.unwrap()),
            "--exit-after" => {
                // 0 is meaningful here (die on the very first cell), so
                // this is the one numeric flag that admits it.
                let v = value.unwrap();
                args.exit_after = Some(v.parse::<usize>().unwrap_or_else(|_| {
                    fail(format_args!(
                        "--exit-after needs a non-negative integer, got '{v}'"
                    ))
                }));
            }
            "--json" => args.json_dir = Some(PathBuf::from(value.unwrap())),
            "--timing-json" => args.timing_json = Some(PathBuf::from(value.unwrap())),
            "--memory-json" => args.memory_json = Some(PathBuf::from(value.unwrap())),
            "--scenario" => args.scenarios.push(PathBuf::from(value.unwrap())),
            "--trace" => args.trace = Some(PathBuf::from(value.unwrap())),
            "--trace-filter" => {
                let expr = value.unwrap();
                // Parse-time strictness: a bad filter must die here, not
                // after the batch has been planned.
                if let Err(e) = TraceFilter::parse(&expr) {
                    fail(format_args!("--trace-filter: {e}"));
                }
                args.trace_filter = Some(expr);
            }
            "--progress-json" => args.progress_json = Some(PathBuf::from(value.unwrap())),
            "--fail-on-drift" => args.fail_on_drift = true,
            "--drift-pct" => {
                let v = value.unwrap();
                args.drift_pct = Some(v.parse::<f64>().ok().filter(|p| *p > 0.0).unwrap_or_else(
                    || {
                        fail(format_args!(
                            "{} needs a positive number, got '{v}'",
                            spec.name
                        ))
                    },
                ));
            }
            "--verify-json" => args.verify_dir = Some(PathBuf::from(value.unwrap())),
            other => unreachable!("flag '{other}' in table but not dispatched"),
        }
    }
    args
}

fn positive_int(spec: &FlagSpec, v: &str) -> usize {
    v.parse::<usize>()
        .ok()
        .filter(|n| *n >= 1)
        .unwrap_or_else(|| {
            fail(format_args!(
                "{} needs a positive integer, got '{v}'",
                spec.name
            ))
        })
}

// ---------------------------------------------------------------------
// Executor backend selection
// ---------------------------------------------------------------------

/// The executor the batch modes run on: the in-process thread pool by
/// default, or a [`WorkerPool`] coordinator when `--workers`/`--connect`
/// ask for one (the pool handle is kept for the per-worker timing
/// breakdown).
struct Backend {
    harness: Harness,
    pool: Option<Arc<WorkerPool>>,
}

impl Backend {
    /// Per-worker stats for the timing JSON (empty in-process).
    fn worker_stats(&self) -> Vec<irn_harness::WorkerStats> {
        self.pool
            .as_ref()
            .map_or_else(Vec::new, |p| p.worker_stats())
    }
}

fn build_backend(args: &Args) -> Backend {
    if args.workers.is_none() && args.connect.is_empty() {
        for f in ["--cell-timeout", "--quorum", "--progress-json"] {
            if args.supplied.contains(&f) {
                fail(format_args!(
                    "{f} needs a worker fleet (--workers/--connect)"
                ));
            }
        }
        return Backend {
            harness: args.jobs.map_or_else(Harness::auto, Harness::new),
            pool: None,
        };
    }
    if args.jobs.is_some() {
        fail("--jobs sizes the in-process thread pool; with --workers/--connect the fleet size is the parallelism — use one or the other");
    }
    let mut specs: Vec<WorkerSpec> = args
        .connect
        .iter()
        .map(|addr| WorkerSpec::Connect { addr: addr.clone() })
        .collect();
    if let Some(n) = args.workers {
        let exe = std::env::current_exe()
            .unwrap_or_else(|e| fail_input(format_args!("cannot locate own executable: {e}")));
        let exe = exe.to_string_lossy().into_owned();
        specs.extend((0..n).map(|_| WorkerSpec::Spawn {
            argv: vec![exe.clone(), "worker".to_string()],
        }));
    }
    let mut cfg = PoolConfig::new(specs);
    // The coordinator narrates the fleet: per-cell completion lines,
    // slow-cell warnings, and retry/reassignment events on stderr
    // (machine-readable copy via --progress-json).
    cfg.progress = true;
    cfg.progress_json = args.progress_json.clone();
    if let Some(secs) = args.cell_timeout {
        cfg.cell_timeout = std::time::Duration::from_secs(secs);
    }
    if let Some(q) = args.quorum {
        if q > cfg.specs.len() {
            fail(format_args!(
                "--quorum {q} can never be met by a fleet of {}",
                cfg.specs.len()
            ));
        }
        cfg.quorum = q;
    }
    let pool = Arc::new(WorkerPool::new(cfg));
    Backend {
        harness: Harness::with_executor(pool.clone()),
        pool: Some(pool),
    }
}

/// A batch the executor could not finish: the typed error, the partial
/// progress, exit(2). Artifact envelopes are all-or-nothing — nothing
/// was written.
fn fail_batch(e: HarnessError) -> ! {
    eprintln!("error: {e}");
    if let Some((completed, total)) = e.partial_progress() {
        eprintln!(
            "partial results: {completed}/{total} cells finished before the batch was abandoned; \
             no reports or JSON envelopes were written"
        );
    }
    std::process::exit(2);
}

// ---------------------------------------------------------------------
// Shared output plumbing
// ---------------------------------------------------------------------

/// Create the output locations **before** the batch runs: discovering
/// an unwritable `--json` directory only after a paper-scale batch
/// would throw the whole computation away.
fn prepare_output_paths(args: &Args) {
    let mut dirs: Vec<&Path> = Vec::new();
    if let Some(dir) = &args.json_dir {
        dirs.push(dir);
    }
    for file in [
        &args.timing_json,
        &args.memory_json,
        &args.trace,
        &args.progress_json,
    ] {
        if let Some(parent) = file
            .as_deref()
            .and_then(Path::parent)
            .filter(|d| !d.as_os_str().is_empty())
        {
            dirs.push(parent);
        }
    }
    for dir in dirs {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
}

/// Parse-time strictness for `--memory-json`: a malformed destination
/// — an existing directory where a file is needed, or a parent that
/// cannot be created — must die *before* the batch runs, as an input
/// error (exit 2), not after a paper-scale batch has been thrown away.
fn validate_memory_json_path(args: &Args) {
    let Some(path) = &args.memory_json else {
        return;
    };
    if path.is_dir() {
        fail_input(format_args!(
            "--memory-json needs a file path, {} is a directory",
            path.display()
        ));
    }
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            fail_input(format_args!(
                "--memory-json: cannot create {}: {e}",
                dir.display()
            ));
        }
    }
}

/// Write the `memory-v1` gauge file when `--memory-json` asked for one.
/// Unlike the timing JSON these bytes are deterministic — identical at
/// any `--jobs` and across any worker fleet of the same build.
fn write_memory_gauge(args: &Args, batch: &BatchRun, scale: &Scale) {
    if let Some(path) = &args.memory_json {
        write_file(path, &irn_experiments::memory_json(batch, scale));
        eprintln!("   [memory gauge -> {}]", path.display());
    }
}

/// The batch's [`TraceSpec`] from `--trace`/`--trace-filter`, or `None`
/// when tracing is off. `--trace-filter` without `--trace` is a usage
/// error: the filter would silently select nothing.
fn trace_spec(args: &Args) -> Option<TraceSpec> {
    if args.trace.is_none() && args.trace_filter.is_some() {
        fail("--trace-filter needs --trace FILE");
    }
    args.trace.as_ref().map(|_| TraceSpec {
        filter: args.trace_filter.clone().unwrap_or_default(),
        ..TraceSpec::default()
    })
}

/// Write the batch's `trace-v1` file: header line (source, filter,
/// cell count) then every captured line in `(cell, emission)` order.
/// The bytes depend only on the configs and the filter — never on
/// `--jobs` or the fleet shape.
fn write_trace(args: &Args, source: &str, batch: &BatchRun) {
    let (Some(path), Some(trace)) = (&args.trace, &batch.trace) else {
        return;
    };
    let filter = args.trace_filter.as_deref().unwrap_or("");
    let mut text = String::new();
    text.push_str(&irn_telemetry::header_line(
        source,
        filter,
        batch.cell_count,
    ));
    text.push('\n');
    for line in &trace.lines {
        text.push_str(line);
        text.push('\n');
    }
    write_file(path, &text);
    eprintln!(
        "   [trace: {} event(s) -> {}{}]",
        trace.lines.len(),
        path.display(),
        if trace.dropped > 0 {
            format!(", {} dropped by ring-buffer overflow", trace.dropped)
        } else {
            String::new()
        },
    );
}

fn write_file(path: &Path, text: &str) {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// The global-batch stderr summary line plus the optional
/// bench-trajectory JSON file.
fn report_batch_timing(
    batch: &BatchRun,
    what: &str,
    count: usize,
    started: std::time::Instant,
    backend: &Backend,
    scale: &Scale,
    timing_json: Option<&Path>,
) {
    eprintln!(
        "   [global batch: {} cells across {} {what}: batch {:.1?}, total {:.1?}, jobs={}, \
         {} events, {:.2} Mev/s]",
        batch.cell_count,
        count,
        batch.batch_time,
        started.elapsed(),
        backend.harness.jobs(),
        batch.total_events,
        batch.events_per_sec() / 1e6,
    );
    let workers = backend.worker_stats();
    for w in &workers {
        eprintln!(
            "   [worker {}: {} cells, {:.1}s cell time, {} failure(s){}]",
            w.name,
            w.cells,
            w.cell_wall_s,
            w.failures,
            if w.alive { "" } else { ", dropped" },
        );
    }
    if let Some(file) = timing_json {
        write_file(
            file,
            &artifacts::timing_json(batch, scale, backend.harness.jobs(), &workers),
        );
    }
}

fn per_report_stderr(
    name: &str,
    class: &str,
    seeds: usize,
    timing: &artifacts::ArtifactTiming,
    telemetry: Option<&TelemetrySummary>,
) {
    if timing.cells > 0 {
        // Scheduler health counters ride along when nonzero: past-time
        // clamps and stale-timer skips are benign by design, but a
        // sudden jump is the first symptom of a scheduling bug.
        let sched = telemetry
            .filter(|t| t.past_clamps > 0 || t.stale_timer_reclaims > 0)
            .map(|t| {
                format!(
                    "; {} past-clamp(s), {} stale-timer skip(s)",
                    t.past_clamps, t.stale_timer_reclaims
                )
            })
            .unwrap_or_default();
        eprintln!(
            "   [{name}: {class} over {seeds} seed(s); {} cells, {} events, {:.2} Mev/s{sched}]",
            timing.cells,
            timing.events,
            timing.events_per_sec() / 1e6,
        );
    } else {
        eprintln!("   [{name}: {class} over {seeds} seed(s)]");
    }
}

// ---------------------------------------------------------------------
// Modes
// ---------------------------------------------------------------------

/// Validate every `*.json` file in `dir` (registry artifacts and
/// scenario-run envelopes alike). Prints one line per file; failure
/// messages reference docs/SCHEMA.md.
fn verify_json_dir(dir: &Path) -> i32 {
    let entries = match std::fs::read_dir(dir) {
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", dir.display());
            return 1;
        }
        Ok(rd) => rd,
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("error: no .json files in {}", dir.display());
        return 1;
    }
    let mut failures = 0;
    for path in &paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        let outcome = match std::fs::read_to_string(path) {
            Err(e) => Err(format!("{name}: cannot read {}: {e}", path.display())),
            Ok(text) => artifacts::verify_artifact_json(&name, &text),
        };
        match outcome {
            Ok(()) => println!("ok   {}", path.display()),
            Err(msg) => {
                println!("FAIL {msg}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} file(s) unparsable or schema-mismatched in {} \
             (schema reference: docs/SCHEMA.md)",
            dir.display()
        );
        1
    } else {
        0
    }
}

/// The registry as a table: name, determinism class, workload class,
/// seed count, and batch cell count at the active scale.
fn list_artifacts(scale: Scale) {
    println!(
        "{:<16} {:<14} {:<12} {:>5}  {:>6}   (scale: {})",
        "artifact",
        "class",
        "workload",
        "seeds",
        "cells",
        scale.label()
    );
    for a in ARTIFACTS {
        let cells = a
            .plan(scale)
            .map_or_else(|| "-".to_string(), |p| p.cell_count().to_string());
        println!(
            "{:<16} {:<14} {:<12} {:>5}  {:>6}",
            a.name,
            a.determinism.as_str(),
            a.workload.as_str(),
            a.seed_count(&scale),
            cells
        );
    }
}

/// Registry-artifact mode: the classic `repro <artifact>... | all`.
fn artifact_mode(args: &Args, scale: Scale) {
    if args.positionals.is_empty() {
        usage();
    }
    // Fail loudly on misspelled artifact names instead of silently
    // printing nothing.
    let wanted: Vec<&str> = args.positionals.iter().map(String::as_str).collect();
    let unknown = artifacts::unknown_names(&wanted);
    if !unknown.is_empty() {
        for name in &unknown {
            eprintln!("error: unknown artifact '{name}'");
        }
        usage();
    }

    prepare_output_paths(args);
    validate_memory_json_path(args);
    let backend = build_backend(args);
    let all = wanted.contains(&"all");
    let selected: Vec<&artifacts::Artifact> = ARTIFACTS
        .iter()
        .filter(|a| all || wanted.contains(&a.name))
        .collect();

    // One global batch across every selected artifact: all simulation
    // cells interleave on the worker pool, then reports assemble and
    // print in presentation order (byte-identical to sequential runs).
    let spec = trace_spec(args);
    let t = std::time::Instant::now();
    let batch =
        artifacts::try_run_batched_traced(&selected, scale, &backend.harness, spec.as_ref())
            .unwrap_or_else(|e| fail_batch(e));
    report_batch_timing(
        &batch,
        "artifact(s)",
        selected.len(),
        t,
        &backend,
        &scale,
        args.timing_json.as_deref(),
    );
    write_memory_gauge(args, &batch, &scale);
    let source: Vec<&str> = selected.iter().map(|a| a.name).collect();
    write_trace(args, &source.join(","), &batch);

    for (((artifact, rep), timing), telemetry) in selected
        .iter()
        .zip(&batch.reports)
        .zip(&batch.timing)
        .zip(&batch.telemetry)
    {
        // Reports go to stdout; progress/timing to stderr so stdout
        // stays byte-identical run to run (for deterministic artifacts).
        print!("{}", rep.render());
        println!();
        per_report_stderr(
            artifact.name,
            artifact.determinism.as_str(),
            artifact.seed_count(&scale),
            timing,
            telemetry.as_ref(),
        );
        if let Some(dir) = &args.json_dir {
            let text = artifacts::artifact_json(artifact, &scale, rep, telemetry.as_ref());
            write_file(&dir.join(format!("{}.json", artifact.name)), &text);
        }
    }
}

/// `repro run --scenario FILE...`: execute user scenarios through the
/// same global batch executor the registry uses.
fn run_scenarios_mode(args: &Args, scale: Scale) {
    let mut files: Vec<PathBuf> = args.positionals[1..].iter().map(PathBuf::from).collect();
    files.extend(args.scenarios.iter().cloned());
    if files.is_empty() {
        fail("run mode needs at least one scenario file (--scenario FILE or positional)");
    }

    let mut scenarios = Vec::with_capacity(files.len());
    let mut slugs: Vec<String> = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| fail_input(format_args!("cannot read {}: {e}", file.display())));
        let scenario = Scenario::from_json_str(&text)
            .unwrap_or_else(|e| fail_input(format_args!("{}: {e}", file.display())));
        let slug = scenario.slug();
        if slugs.contains(&slug) {
            fail_input(format_args!(
                "{}: scenario name '{}' collides with an earlier file (slug '{slug}')",
                file.display(),
                scenario.name()
            ));
        }
        slugs.push(slug);
        scenarios.push(scenario);
    }

    prepare_output_paths(args);
    validate_memory_json_path(args);
    let backend = build_backend(args);
    let seeds = args.seeds.unwrap_or(scale.seeds);
    let items: Vec<(String, Option<_>)> = scenarios
        .iter()
        .zip(&slugs)
        .map(|(s, slug)| (slug.clone(), Some(scenario_plan(s, seeds))))
        .collect();

    let spec = trace_spec(args);
    let t = std::time::Instant::now();
    let batch = artifacts::try_run_plan_batch_traced(
        items,
        |i| unreachable!("scenario {i} has a plan"),
        &backend.harness,
        spec.as_ref(),
    )
    .unwrap_or_else(|e| fail_batch(e));
    report_batch_timing(
        &batch,
        "scenario(s)",
        scenarios.len(),
        t,
        &backend,
        &scale,
        args.timing_json.as_deref(),
    );
    write_memory_gauge(args, &batch, &scale);
    write_trace(args, &slugs.join(","), &batch);

    for (((scenario, rep), timing), telemetry) in scenarios
        .iter()
        .zip(&batch.reports)
        .zip(&batch.timing)
        .zip(&batch.telemetry)
    {
        print!("{}", rep.render());
        println!();
        per_report_stderr(
            &scenario.slug(),
            "replicated",
            seeds,
            timing,
            telemetry.as_ref(),
        );
        if let Some(dir) = &args.json_dir {
            let text = scenario_json(scenario, seeds, rep, telemetry.as_ref());
            write_file(&dir.join(format!("{}.json", scenario.slug())), &text);
        }
    }
}

/// `repro worker`: serve the `work-v1` protocol for a coordinator —
/// over stdin/stdout when spawned (`--workers N` does this), or over
/// TCP with `--listen ADDR` (one coordinator at a time; the accept
/// loop serves connections serially and runs until killed).
///
/// `--exit-after N` is the fault-injection hook behind the
/// kill-a-worker tests and the CI retry job: the worker consumes its
/// N+1th cell and dies without answering, forcing the coordinator down
/// the reassignment path.
fn worker_mode(args: &Args) {
    if args.positionals.len() > 1 {
        fail(format_args!(
            "worker mode takes no positional arguments, got '{}'",
            args.positionals[1]
        ));
    }
    let opts = WorkerOptions {
        exit_after: args.exit_after,
    };
    let Some(addr) = &args.listen else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let summary = worker::serve(stdin.lock(), stdout.lock(), opts)
            .unwrap_or_else(|e| fail_input(format_args!("worker I/O error: {e}")));
        eprintln!(
            "   [worker: answered {}, {} error frame(s){}]",
            summary.answered,
            summary.errors,
            if summary.aborted { ", aborted" } else { "" }
        );
        return;
    };
    let listener = std::net::TcpListener::bind(addr)
        .unwrap_or_else(|e| fail_input(format_args!("cannot listen on {addr}: {e}")));
    let local = listener
        .local_addr()
        .map_or_else(|_| addr.clone(), |a| a.to_string());
    // In listen mode stdout carries no protocol frames, so announce the
    // bound address there — scripts bind port 0 and read the real port.
    println!("listening {local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("   [worker {local}: accept failed: {e}]");
                continue;
            }
        };
        let reader = match stream.try_clone() {
            Ok(r) => std::io::BufReader::new(r),
            Err(e) => {
                eprintln!("   [worker {local}: cannot clone stream: {e}]");
                continue;
            }
        };
        match worker::serve(reader, &stream, opts) {
            Ok(summary) => {
                eprintln!(
                    "   [worker {local}: answered {}, {} error frame(s){}]",
                    summary.answered,
                    summary.errors,
                    if summary.aborted { ", aborted" } else { "" }
                );
                if summary.aborted {
                    // Simulated death must take the whole worker down,
                    // not just this connection.
                    std::process::exit(0);
                }
            }
            // A coordinator vanishing mid-connection is its failure,
            // not ours: keep serving the next one.
            Err(e) => eprintln!("   [worker {local}: connection error: {e}]"),
        }
    }
}

/// `repro emit-scenario <artifact>... --json DIR`: dump each selected
/// artifact's logical cells (the seed-replicate fan-out deduplicated
/// away) as editable scenario-v1 files.
fn emit_scenario_mode(args: &Args, scale: Scale) {
    let wanted: Vec<&str> = args.positionals[1..].iter().map(String::as_str).collect();
    if wanted.is_empty() {
        fail("emit-scenario needs artifact names (or 'all')");
    }
    let unknown = artifacts::unknown_names(&wanted);
    if !unknown.is_empty() {
        for name in &unknown {
            eprintln!("error: unknown artifact '{name}'");
        }
        usage();
    }
    let Some(dir) = &args.json_dir else {
        fail("emit-scenario needs --json DIR for the output directory");
    };

    let all = wanted.contains(&"all");
    let selected: Vec<&artifacts::Artifact> = ARTIFACTS
        .iter()
        .filter(|a| all || wanted.contains(&a.name))
        .collect();
    for artifact in selected {
        let Some(plan) = artifact.plan(scale) else {
            eprintln!(
                "   [{}: inline artifact (no simulation cells), nothing to emit]",
                artifact.name
            );
            continue;
        };
        // The plan's cells are the seed-replicate fan-out; keep one
        // cell per logical cell (same label and same config apart from
        // the seed ⇒ same logical cell, first/base seed wins).
        let mut logical: Vec<&irn_harness::Cell> = Vec::new();
        for cell in plan.cells() {
            let dup = logical.iter().any(|kept| {
                kept.label() == cell.label()
                    && kept.config().clone().with_seed(0) == cell.config().clone().with_seed(0)
            });
            if !dup {
                logical.push(cell);
            }
        }
        for (i, cell) in logical.iter().enumerate() {
            // Re-name each emitted scenario uniquely (artifact + cell
            // index + label): several cells of one artifact may share a
            // display label (fig9's are all "incast"), and `repro run`
            // rejects scenario-name collisions — emitted sets must run
            // back as a batch unedited. File stem == slug(name).
            let scenario = cell
                .scenario()
                .with_name(format!("{}-{i:02} {}", artifact.name, cell.label()))
                .expect("artifact names are nonempty");
            let path = dir.join(format!("{}.json", scenario.slug()));
            write_file(&path, &scenario.to_json_string());
        }
        eprintln!(
            "   [{}: wrote {} scenario file(s) to {}]",
            artifact.name,
            logical.len(),
            dir.display()
        );
    }
}

/// `repro trace-summarize FILE`: aggregate a `trace-v1` NDJSON file
/// into a per-kind table and a per-flow table (events by kind, sorted
/// by volume). Doubles as the CI's schema validator: a header with the
/// wrong schema tag, an unparsable line, or an event missing its
/// mandatory fields exits 1.
fn trace_summarize_mode(args: &Args) {
    let rest = &args.positionals[1..];
    if rest.len() != 1 {
        fail("trace-summarize needs exactly one trace-v1 file");
    }
    let path = &rest[0];
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_input(format_args!("cannot read {path}: {e}")));
    let mut lines = text.lines().enumerate();
    // Line 1 is the header: schema tag, source, filter, cell count.
    let Some((_, header)) = lines.next() else {
        fail_input(format_args!(
            "{path}: empty file, expected a trace-v1 header"
        ));
    };
    let header = json::from_str(header)
        .unwrap_or_else(|e| fail_input(format_args!("{path}:1: bad header: {e}")));
    if header.get("schema").and_then(Value::as_str) != Some(irn_telemetry::TRACE_SCHEMA) {
        fail_input(format_args!(
            "{path}: not a {} file (see docs/TRACING.md)",
            irn_telemetry::TRACE_SCHEMA
        ));
    }
    let cells = header.get("cells").and_then(Value::as_u64).unwrap_or(0);
    let filter = header
        .get("filter")
        .and_then(Value::as_str)
        .unwrap_or_default();

    // kind -> count, and flow -> (events, kind -> count).
    let mut by_kind: Vec<(String, u64)> = Vec::new();
    let mut by_flow: Vec<(u64, u64)> = Vec::new();
    // Completed application operations: (cell, op, client, latency_ns),
    // harvested from `app.op.done` lines (closed-loop runs only).
    let mut ops: Vec<(u64, u64, u64, u64)> = Vec::new();
    let mut phases = 0u64;
    let mut events = 0u64;
    let mut truncated = 0u64;
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let n = i + 1;
        let v = json::from_str(line)
            .unwrap_or_else(|e| fail_input(format_args!("{path}:{n}: bad event line: {e}")));
        let Some(kind) = v.get("kind").and_then(Value::as_str) else {
            fail_input(format_args!("{path}:{n}: event without a 'kind'"));
        };
        if v.get("cell").and_then(Value::as_u64).is_none()
            || v.get("t").and_then(Value::as_u64).is_none()
        {
            fail_input(format_args!(
                "{path}:{n}: event without numeric 'cell'/'t' fields"
            ));
        }
        events += 1;
        if kind == "trace.truncated" {
            truncated += v.get("dropped").and_then(Value::as_u64).unwrap_or(0);
        }
        if kind == "app.op.done" {
            ops.push((
                v.get("cell").and_then(Value::as_u64).unwrap_or(0),
                v.get("op").and_then(Value::as_u64).unwrap_or(0),
                v.get("client").and_then(Value::as_u64).unwrap_or(0),
                v.get("latency_ns").and_then(Value::as_u64).unwrap_or(0),
            ));
        }
        if kind == "app.phase" {
            phases += 1;
        }
        match by_kind.iter_mut().find(|(k, _)| k == kind) {
            Some((_, c)) => *c += 1,
            None => by_kind.push((kind.to_string(), 1)),
        }
        if let Some(flow) = v.get("flow").and_then(Value::as_u64) {
            match by_flow.iter_mut().find(|(f, _)| *f == flow) {
                Some((_, c)) => *c += 1,
                None => by_flow.push((flow, 1)),
            }
        }
    }

    println!(
        "trace {path}: {events} event(s) across {cells} cell(s), filter '{filter}'{}",
        if truncated > 0 {
            format!(", {truncated} dropped by ring-buffer overflow")
        } else {
            String::new()
        },
    );
    println!();
    println!("{:<16} {:>10} {:>8}", "kind", "events", "share");
    by_kind.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    for (kind, count) in &by_kind {
        println!(
            "{kind:<16} {count:>10} {:>7.1}%",
            *count as f64 / events.max(1) as f64 * 100.0
        );
    }
    println!();
    println!("{:<8} {:>10}   top flows by event volume", "flow", "events");
    by_flow.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    for (flow, count) in by_flow.iter().take(20) {
        println!("{flow:<8} {count:>10}");
    }
    if by_flow.len() > 20 {
        println!("... and {} more flow(s)", by_flow.len() - 20);
    }

    // Per-operation view: only printed when the trace carries
    // closed-loop `app.op.done` events (see docs/TRACING.md).
    if !ops.is_empty() {
        let sum: u64 = ops.iter().map(|(_, _, _, l)| l).sum();
        let mean_ns = sum / ops.len() as u64;
        println!();
        println!(
            "operations: {} completed, {} phase barrier(s), mean latency {:.3} ms",
            ops.len(),
            phases,
            mean_ns as f64 / 1e6
        );
        println!(
            "{:<6} {:<8} {:<8} {:>12}   slowest operations",
            "cell", "op", "client", "latency_ms"
        );
        ops.sort_by(|a, b| b.3.cmp(&a.3).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
        for (cell, op, client, latency_ns) in ops.iter().take(10) {
            println!(
                "{cell:<6} {op:<8} {client:<8} {:>12.3}",
                *latency_ns as f64 / 1e6
            );
        }
        if ops.len() > 10 {
            println!("... and {} more operation(s)", ops.len() - 10);
        }
    }
}

/// `repro diff-timing OLD NEW`: per-artifact events/sec drift between
/// two bench-trajectory-v1 files. Warn-only by default (exits 0; drift
/// beyond the threshold prints a GitHub `::warning` annotation);
/// `--fail-on-drift` turns threshold violations into exit 1 — the CI's
/// trace-off overhead gate.
fn diff_timing_mode(args: &Args) {
    let rest = &args.positionals[1..];
    if rest.len() != 2 {
        fail("diff-timing needs exactly two bench-trajectory JSON files (old, new)");
    }
    let threshold = args.drift_pct.unwrap_or(20.0);
    let load = |path: &str| -> Vec<(String, f64)> {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail_input(format_args!("cannot read {path}: {e}")));
        let v = json::from_str(&text).unwrap_or_else(|e| fail_input(format_args!("{path}: {e}")));
        if v.get("schema").and_then(Value::as_str) != Some("bench-trajectory-v1") {
            fail_input(format_args!("{path}: not a bench-trajectory-v1 file"));
        }
        let mut out = vec![(
            "(batch)".to_string(),
            v.get("events_per_sec")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        )];
        for row in v.get("artifacts").and_then(Value::as_array).unwrap_or(&[]) {
            let (Some(name), Some(eps)) = (
                row.get("artifact").and_then(Value::as_str),
                row.get("events_per_sec").and_then(Value::as_f64),
            ) else {
                continue;
            };
            out.push((name.to_string(), eps));
        }
        out
    };
    let old = load(&rest[0]);
    let new = load(&rest[1]);
    let mut violations = 0usize;
    println!(
        "{:<16} {:>12} {:>12} {:>9}   (warn beyond ±{threshold}%)",
        "artifact", "old Mev/s", "new Mev/s", "drift"
    );
    for (name, new_eps) in &new {
        let Some((_, old_eps)) = old.iter().find(|(n, _)| n == name) else {
            println!(
                "{name:<16} {:>12} {:>12.2} {:>9}",
                "-",
                new_eps / 1e6,
                "new"
            );
            continue;
        };
        if *old_eps <= 0.0 || *new_eps <= 0.0 {
            // Inline artifacts contribute no cells; nothing to compare.
            continue;
        }
        let drift = (new_eps - old_eps) / old_eps * 100.0;
        println!(
            "{name:<16} {:>12.2} {:>12.2} {:>+8.1}%",
            old_eps / 1e6,
            new_eps / 1e6,
            drift
        );
        if drift.abs() > threshold {
            violations += 1;
            // GitHub Actions annotation; warn-only by default — timing
            // on shared CI runners is noisy, a human judges the trend.
            println!(
                "::warning title=bench drift::{name} events/sec changed {drift:+.1}% \
                 ({:.2} -> {:.2} Mev/s)",
                old_eps / 1e6,
                new_eps / 1e6
            );
        }
    }
    for (name, _) in &old {
        if !new.iter().any(|(n, _)| n == name) {
            println!("{name:<16} {:>12} {:>12} {:>9}", "-", "-", "gone");
        }
    }
    if args.fail_on_drift && violations > 0 {
        eprintln!(
            "error: {violations} comparison(s) drifted beyond ±{threshold}% \
             and --fail-on-drift is set"
        );
        std::process::exit(1);
    }
}

/// `repro diff-memory OLD NEW`: per-artifact bytes/flow drift between
/// two `memory-v1` gauge files. Warn-only by default (exits 0; drift
/// beyond the threshold prints a GitHub `::warning` annotation);
/// `--fail-on-drift` turns threshold violations into exit 1. Doubles
/// as the gauge validator: `repro diff-memory FILE FILE` exits 0 iff
/// FILE is a well-formed gauge. The gauge is deterministic, so unlike
/// timing drift any movement here is a real code change.
fn diff_memory_mode(args: &Args) {
    let rest = &args.positionals[1..];
    if rest.len() != 2 {
        fail("diff-memory needs exactly two memory-v1 JSON files (old, new)");
    }
    let threshold = args.drift_pct.unwrap_or(10.0);
    // bytes/flow plus the peak packet-arena occupancy; the pool column
    // is optional so gauges written before the arena existed still diff.
    let load = |path: &str| -> Vec<(String, f64, Option<f64>)> {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail_input(format_args!("cannot read {path}: {e}")));
        let v = irn_experiments::verify_memory_json(&text)
            .unwrap_or_else(|e| fail_input(format_args!("{path}: {e}")));
        v.get("artifacts")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|row| {
                Some((
                    row.get("artifact")?.as_str()?.to_string(),
                    row.get("bytes_per_flow")?.as_f64()?,
                    row.get("pkt_pool_pkts").and_then(Value::as_f64),
                ))
            })
            .collect()
    };
    let old = load(&rest[0]);
    let new = load(&rest[1]);
    let mut violations = 0usize;
    // Compare one (old, new) pair of gauges; returns drift violations.
    let mut compare = |name: &str, what: &str, old_v: f64, new_v: f64| {
        if old_v <= 0.0 || new_v <= 0.0 {
            // A zero-flow artifact has no per-flow cost to compare.
            return;
        }
        let drift = (new_v - old_v) / old_v * 100.0;
        println!("{name:<16} {what:<10} {old_v:>12.1} {new_v:>12.1} {drift:>+8.1}%");
        if drift.abs() > threshold {
            violations += 1;
            // GitHub Actions annotation; warn-only by default so a
            // deliberate state-layout change does not block CI — a
            // human judges whether the new cost is intended.
            println!(
                "::warning title=memory drift::{name} {what} changed \
                 {drift:+.1}% ({old_v:.1} -> {new_v:.1})"
            );
        }
    };
    println!(
        "{:<16} {:<10} {:>12} {:>12} {:>9}   (warn beyond ±{threshold}%)",
        "artifact", "gauge", "old", "new", "drift"
    );
    for (name, new_bpf, new_pool) in &new {
        let Some((_, old_bpf, old_pool)) = old.iter().find(|(n, _, _)| n == name) else {
            println!(
                "{name:<16} {:<10} {:>12} {:>12.1} {:>9}",
                "B/flow", "-", new_bpf, "new"
            );
            continue;
        };
        compare(name, "B/flow", *old_bpf, *new_bpf);
        // Pool occupancy: only when both gauges carry it (old builds
        // pre-date the packet arena). Growth here means more packets
        // in flight at once — a hot-path regression diff-timing can
        // miss when the extra work is still fast.
        if let (Some(o), Some(n)) = (old_pool, new_pool) {
            compare(name, "pool pkts", *o, *n);
        }
    }
    for (name, _, _) in &old {
        if !new.iter().any(|(n, _, _)| n == name) {
            println!(
                "{name:<16} {:<10} {:>12} {:>12} {:>9}",
                "-", "-", "-", "gone"
            );
        }
    }
    if args.fail_on_drift && violations > 0 {
        eprintln!(
            "error: {violations} comparison(s) drifted beyond ±{threshold}% \
             and --fail-on-drift is set"
        );
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();

    // Timing output only exists for batch runs; accepting the flag in
    // --list/--verify-json modes would silently never write it.
    if args.timing_json.is_some() && (args.list || args.verify_dir.is_some()) {
        fail("--timing-json requires running artifacts or scenarios (not --list/--verify-json)");
    }
    if args.memory_json.is_some() && (args.list || args.verify_dir.is_some()) {
        fail("--memory-json requires running artifacts or scenarios (not --list/--verify-json)");
    }

    if let Some(dir) = &args.verify_dir {
        std::process::exit(verify_json_dir(dir));
    }

    let mut scale = if args.full {
        Scale::full()
    } else {
        Scale::quick()
    };
    if let Some(seeds) = args.seeds {
        scale = scale.with_seeds(seeds);
    }

    if args.list {
        list_artifacts(scale);
        return;
    }

    match args.positionals.first().map(String::as_str) {
        Some(mode) if MODE_FLAGS.iter().any(|(m, _)| *m == mode) => {
            let (_, allowed) = MODE_FLAGS.iter().find(|(m, _)| *m == mode).unwrap();
            args.restrict_flags(mode, allowed);
            match mode {
                "run" => run_scenarios_mode(&args, scale),
                "worker" => worker_mode(&args),
                "emit-scenario" => emit_scenario_mode(&args, scale),
                "trace-summarize" => trace_summarize_mode(&args),
                "diff-memory" => diff_memory_mode(&args),
                _ => diff_timing_mode(&args),
            }
        }
        _ => {
            for f in SUBCOMMAND_ONLY_FLAGS {
                if args.supplied.contains(f) {
                    fail(format_args!(
                        "{f} requires a subcommand mode (see usage), not the artifact mode"
                    ));
                }
            }
            artifact_mode(&args, scale);
        }
    }
}
