//! The `work-v1` wire protocol: newline-delimited JSON frames between a
//! coordinator and its workers.
//!
//! Three frame kinds flow over a worker connection (stdin/stdout of a
//! spawned `repro worker`, or a TCP stream to a listening one):
//!
//! ```text
//! coordinator → worker   {"frame":"work-v1","id":N,"scenario":{…scenario-v1…}}
//! worker → coordinator   {"frame":"result-v1","id":N,"wall_s":S,"result":{…}}
//! worker → coordinator   {"frame":"error-v1","id":N|null,"error":"…"}
//! ```
//!
//! One frame per line, compact JSON (no unescaped newlines can occur).
//! The `id` is the cell's submission index in the coordinator's batch;
//! echoing it back is what lets results arrive over any connection in
//! any order and still assemble in submission order. The `result`
//! payload is the full [`RunResult`] in its schema-v2 wire form, which
//! round-trips **bit-exactly** — the byte-identity guarantee of the
//! distributed executor rests on that. `wall_s` is the worker-side
//! wall-clock seconds for the cell (determinism class `timing`: it
//! feeds stderr/bench-trajectory reporting, never result bytes).
//!
//! The full frame reference lives in `docs/SCHEMA.md`.

use irn_core::{RunResult, Scenario};
use irn_telemetry::{TraceChunk, TraceSpec};
use serde::json::{self, Value};
use serde::{Deserialize, Serialize};

/// The protocol identifier carried by every work frame.
pub const WORK_SCHEMA: &str = "work-v1";
/// The frame tag of a successful result.
pub const RESULT_SCHEMA: &str = "result-v1";
/// The frame tag of a worker-reported error.
pub const ERROR_SCHEMA: &str = "error-v1";

/// One parsed protocol frame.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Coordinator → worker: run this scenario.
    Work {
        /// Submission index of the cell in the coordinator's batch.
        id: u64,
        /// The cell's full scenario (validated on parse).
        scenario: Scenario,
        /// Flight-recorder request: capture a trace-v1 chunk for this
        /// cell. Absent (the pre-trace wire form) means no tracing —
        /// old coordinators and workers interoperate unchanged.
        trace: Option<TraceSpec>,
    },
    /// Worker → coordinator: the cell's result.
    Result {
        /// Echo of the work frame's id.
        id: u64,
        /// Worker-side wall-clock seconds for the run (timing class).
        wall_s: f64,
        /// The bit-exact run result.
        result: Box<RunResult>,
        /// The cell's trace-v1 chunk, echoed when the work frame asked
        /// for one.
        trace: Option<TraceChunk>,
    },
    /// Worker → coordinator: the referenced work frame failed.
    Error {
        /// Echo of the offending frame's id, when it could be read.
        id: Option<u64>,
        /// What went wrong.
        message: String,
    },
}

/// A frame that could not be decoded.
///
/// Carries the frame `id` when it was readable, so a worker can report
/// the failure back against the right cell instead of a bare protocol
/// error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// The offending frame's id, when the envelope was intact enough
    /// to read it.
    pub id: Option<u64>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.id {
            Some(id) => write!(f, "frame id {id}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    fn new(id: Option<u64>, message: impl Into<String>) -> FrameError {
        FrameError {
            id,
            message: message.into(),
        }
    }
}

/// Encode a work frame as one compact JSON line (no trailing newline).
/// `trace` adds the optional flight-recorder request; `None` produces
/// the pre-trace wire form byte-for-byte.
pub fn encode_work(id: u64, scenario: &Scenario, trace: Option<&TraceSpec>) -> String {
    let mut fields = vec![
        ("frame".to_string(), WORK_SCHEMA.to_json()),
        ("id".to_string(), id.to_json()),
        ("scenario".to_string(), scenario.to_json_value()),
    ];
    if let Some(spec) = trace {
        fields.push((
            "trace".to_string(),
            Value::Object(vec![
                ("filter".to_string(), spec.filter.to_json()),
                ("capacity".to_string(), (spec.capacity as u64).to_json()),
            ]),
        ));
    }
    json::to_string(&Value::Object(fields))
}

/// Encode a result frame as one compact JSON line (no trailing newline).
/// `trace` echoes the captured chunk when the work frame asked for one.
pub fn encode_result(
    id: u64,
    wall_s: f64,
    result: &RunResult,
    trace: Option<&TraceChunk>,
) -> String {
    let mut fields = vec![
        ("frame".to_string(), RESULT_SCHEMA.to_json()),
        ("id".to_string(), id.to_json()),
        ("wall_s".to_string(), wall_s.to_json()),
        ("result".to_string(), result.to_json()),
    ];
    if let Some(chunk) = trace {
        fields.push((
            "trace".to_string(),
            Value::Object(vec![
                ("dropped".to_string(), chunk.dropped.to_json()),
                (
                    "lines".to_string(),
                    Value::Array(chunk.lines.iter().map(|l| l.to_json()).collect()),
                ),
            ]),
        ));
    }
    json::to_string(&Value::Object(fields))
}

/// Encode an error frame as one compact JSON line (no trailing newline).
pub fn encode_error(id: Option<u64>, message: &str) -> String {
    json::to_string(&Value::Object(vec![
        ("frame".to_string(), ERROR_SCHEMA.to_json()),
        ("id".to_string(), id.to_json()),
        ("error".to_string(), message.to_json()),
    ]))
}

/// Decode one protocol line into a [`Frame`].
pub fn decode(line: &str) -> Result<Frame, FrameError> {
    let v = json::from_str(line).map_err(|e| FrameError::new(None, format!("bad JSON: {e}")))?;
    let id = v.get("id").and_then(Value::as_u64);
    let Some(tag) = v.get("frame").and_then(Value::as_str) else {
        return Err(FrameError::new(id, "missing 'frame' tag"));
    };
    match tag {
        WORK_SCHEMA => {
            let id = id.ok_or_else(|| FrameError::new(None, "work frame without numeric id"))?;
            let doc = v
                .get("scenario")
                .ok_or_else(|| FrameError::new(Some(id), "work frame without scenario"))?;
            let scenario = Scenario::from_json_value(doc)
                .map_err(|e| FrameError::new(Some(id), format!("bad scenario: {e}")))?;
            let trace = v.get("trace").map(|t| TraceSpec {
                filter: t
                    .get("filter")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                capacity: t
                    .get("capacity")
                    .and_then(Value::as_u64)
                    .map(|c| c as usize)
                    .unwrap_or(irn_telemetry::DEFAULT_CAPACITY),
            });
            Ok(Frame::Work {
                id,
                scenario,
                trace,
            })
        }
        RESULT_SCHEMA => {
            let id = id.ok_or_else(|| FrameError::new(None, "result frame without numeric id"))?;
            let wall_s = v.get("wall_s").and_then(Value::as_f64).unwrap_or(0.0);
            let doc = v
                .get("result")
                .ok_or_else(|| FrameError::new(Some(id), "result frame without result"))?;
            let result = RunResult::from_json(doc)
                .map_err(|e| FrameError::new(Some(id), format!("bad result: {e}")))?;
            let trace = match v.get("trace") {
                None => None,
                Some(t) => {
                    let lines = match t.get("lines") {
                        Some(Value::Array(items)) => items
                            .iter()
                            .map(|l| {
                                l.as_str().map(str::to_string).ok_or_else(|| {
                                    FrameError::new(Some(id), "non-string trace line")
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                        _ => {
                            return Err(FrameError::new(
                                Some(id),
                                "result trace without a lines array",
                            ))
                        }
                    };
                    Some(TraceChunk {
                        lines,
                        dropped: t.get("dropped").and_then(Value::as_u64).unwrap_or(0),
                    })
                }
            };
            Ok(Frame::Result {
                id,
                wall_s,
                result: Box::new(result),
                trace,
            })
        }
        ERROR_SCHEMA => {
            let message = v
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unspecified worker error")
                .to_string();
            Ok(Frame::Error { id, message })
        }
        other => Err(FrameError::new(id, format!("unknown frame tag '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irn_core::{ExperimentConfig, TopologySpec, TrafficModel};

    fn scenario() -> Scenario {
        Scenario::from_config(
            "wire test",
            ExperimentConfig {
                topology: TopologySpec::SingleSwitch(4),
                traffic: TrafficModel::Poisson {
                    load: 0.5,
                    sizes: irn_core::workload::SizeDistribution::HeavyTailed,
                    flow_count: 30,
                },
                ..ExperimentConfig::paper_default(30)
            },
        )
        .unwrap()
    }

    #[test]
    fn work_frame_round_trips_on_one_line() {
        let line = encode_work(7, &scenario(), None);
        assert!(!line.contains('\n'), "frames must be single lines");
        match decode(&line).unwrap() {
            Frame::Work {
                id,
                scenario: s,
                trace,
            } => {
                assert_eq!(id, 7);
                assert_eq!(s, scenario());
                assert_eq!(trace, None);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    /// The trace request and chunk ride the existing frames as optional
    /// fields: round-trip both, and confirm `None` keeps the pre-trace
    /// wire form (no `trace` key at all).
    #[test]
    fn trace_fields_round_trip_and_stay_optional() {
        let spec = TraceSpec {
            filter: "kind=pfc.*,flow=3".to_string(),
            capacity: 4096,
        };
        let line = encode_work(2, &scenario(), Some(&spec));
        match decode(&line).unwrap() {
            Frame::Work { trace, .. } => assert_eq!(trace, Some(spec)),
            other => panic!("wrong frame: {other:?}"),
        }
        assert!(!encode_work(2, &scenario(), None).contains("\"trace\""));

        let result = irn_core::run(scenario().config().clone());
        let chunk = TraceChunk {
            lines: vec![
                r#"{"cell":2,"t":0,"kind":"flow.start","flow":0}"#.to_string(),
                r#"{"cell":2,"t":9,"kind":"flow.done","flow":0}"#.to_string(),
            ],
            dropped: 5,
        };
        let line = encode_result(2, 0.1, &result, Some(&chunk));
        assert!(!line.contains('\n'));
        match decode(&line).unwrap() {
            Frame::Result { trace, .. } => assert_eq!(trace, Some(chunk)),
            other => panic!("wrong frame: {other:?}"),
        }
        assert!(!encode_result(2, 0.1, &result, None).contains("\"trace\""));
    }

    /// The load-bearing property of the whole distributed design: a
    /// real simulation result survives encode → decode **bit-exactly**,
    /// floats included.
    #[test]
    fn result_frame_round_trips_bit_exactly() {
        let result = irn_core::run(scenario().config().clone());
        let line = encode_result(3, 0.25, &result, None);
        assert!(!line.contains('\n'));
        match decode(&line).unwrap() {
            Frame::Result {
                id,
                wall_s,
                result: back,
                ..
            } => {
                assert_eq!(id, 3);
                assert!((wall_s - 0.25).abs() < 1e-12);
                // Bit-exactness via the serialized form: identical trees.
                assert_eq!(back.to_json(), result.to_json());
                assert_eq!(
                    back.summary.avg_slowdown.to_bits(),
                    result.summary.avg_slowdown.to_bits()
                );
                assert_eq!(back.summary.avg_fct, result.summary.avg_fct);
                assert_eq!(back.events, result.events);
                assert_eq!(back.fabric, result.fabric);
                assert_eq!(back.sched, result.sched);
                assert_eq!(back.finished_at, result.finished_at);
                assert_eq!(back.metrics, result.metrics);
                assert_eq!(back.memory, result.memory);
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn error_frames_and_garbage_decode_sanely() {
        match decode(&encode_error(Some(9), "boom")).unwrap() {
            Frame::Error { id, message } => {
                assert_eq!(id, Some(9));
                assert_eq!(message, "boom");
            }
            other => panic!("wrong frame: {other:?}"),
        }
        match decode(&encode_error(None, "x")).unwrap() {
            Frame::Error { id, .. } => assert_eq!(id, None),
            other => panic!("wrong frame: {other:?}"),
        }
        assert!(decode("not json").is_err());
        assert!(decode(r#"{"frame":"nope-v9","id":1}"#).is_err());
        // A work frame with an invalid scenario keeps its id so the
        // worker can report the failure against the right cell.
        let err = decode(r#"{"frame":"work-v1","id":5,"scenario":{"bad":true}}"#).unwrap_err();
        assert_eq!(err.id, Some(5));
    }
}
