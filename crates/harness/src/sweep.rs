//! Cartesian sweep grids: the paper's experiment matrices as data.
//!
//! A [`SweepGrid`] expands a base config across up to four axes —
//! transport/PFC variants, congestion-control schemes, offered loads,
//! and seeds — into an ordered batch of [`Cell`]s. Expansion order is
//! fixed (load → cc → variant → seed, outermost first) so a grid
//! always yields the same cells in the same order, which is what lets
//! reports built from grid batches render identically at any job count.

use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::{ExperimentConfig, TrafficModel};

use crate::cell::Cell;

/// One transport/PFC pairing with its display name, e.g.
/// `("RoCE (PFC)", Roce, pfc=true)`. The paper never sweeps transport
/// and PFC independently — each compared configuration is such a pair.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Display name, e.g. `"IRN"` or `"RoCE (PFC)"`.
    pub name: String,
    /// Transport preset.
    pub transport: TransportKind,
    /// Whether PFC is enabled in the fabric.
    pub pfc: bool,
}

impl Variant {
    /// Build a variant.
    pub fn new(name: impl Into<String>, transport: TransportKind, pfc: bool) -> Variant {
        Variant {
            name: name.into(),
            transport,
            pfc,
        }
    }
}

/// The figure-label suffix for a CC scheme: empty for [`CcKind::None`],
/// `" + Timely"` style otherwise (matches the paper's row labels).
pub fn cc_suffix(cc: CcKind) -> String {
    match cc {
        CcKind::None => String::new(),
        other => format!(" + {}", other.label()),
    }
}

/// A cartesian sweep over variants × cc × load × seed.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    base: ExperimentConfig,
    variants: Vec<Variant>,
    ccs: Vec<CcKind>,
    loads: Vec<f64>,
    seeds: Vec<u64>,
}

impl SweepGrid {
    /// A grid over `base`. Until axes are added, the grid is a single
    /// cell running `base` unchanged.
    pub fn new(base: ExperimentConfig) -> SweepGrid {
        SweepGrid {
            base,
            variants: Vec::new(),
            ccs: Vec::new(),
            loads: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// Sweep transport/PFC variants.
    pub fn variants(mut self, variants: impl IntoIterator<Item = Variant>) -> SweepGrid {
        self.variants = variants.into_iter().collect();
        self
    }

    /// Sweep congestion-control schemes.
    pub fn ccs(mut self, ccs: impl IntoIterator<Item = CcKind>) -> SweepGrid {
        self.ccs = ccs.into_iter().collect();
        self
    }

    /// Sweep offered load (requires a Poisson base workload).
    pub fn loads(mut self, loads: impl IntoIterator<Item = f64>) -> SweepGrid {
        self.loads = loads.into_iter().collect();
        self
    }

    /// Sweep workload seeds.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> SweepGrid {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Number of cells [`SweepGrid::build`] will produce.
    pub fn len(&self) -> usize {
        [
            self.loads.len(),
            self.ccs.len(),
            self.variants.len(),
            self.seeds.len(),
        ]
        .iter()
        .map(|&n| n.max(1))
        .product()
    }

    /// True when the grid would produce no cells (never: an empty axis
    /// means "don't sweep it", so the minimum grid is one cell).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Expand into cells, ordered load → cc → variant → seed
    /// (outermost first). Labels name the variant and CC like the
    /// paper's rows, and append `load=`/`seed=` coordinates only for
    /// axes actually swept (more than one value).
    pub fn build(&self) -> Vec<Cell> {
        let loads: Vec<Option<f64>> = axis(&self.loads);
        let ccs: Vec<Option<CcKind>> = axis(&self.ccs);
        let variants: Vec<Option<&Variant>> = axis_ref(&self.variants);
        let seeds: Vec<Option<u64>> = axis(&self.seeds);

        let mut cells = Vec::with_capacity(self.len());
        for &load in &loads {
            for &cc in &ccs {
                for &variant in &variants {
                    for &seed in &seeds {
                        let mut cfg = self.base.clone();
                        if let Some(load) = load {
                            cfg.traffic = with_load(&cfg.traffic, load);
                        }
                        if let Some(cc) = cc {
                            cfg = cfg.with_cc(cc);
                        }
                        if let Some(v) = variant {
                            cfg = cfg.with_transport(v.transport).with_pfc(v.pfc);
                        }
                        if let Some(seed) = seed {
                            cfg = cfg.with_seed(seed);
                        }

                        let mut label = variant.map_or_else(String::new, |v| v.name.clone());
                        if let Some(cc) = cc {
                            label.push_str(&cc_suffix(cc));
                        }
                        if self.loads.len() > 1 {
                            label.push_str(&format!(
                                "/load={}%",
                                (load.unwrap() * 100.0).round() as u32
                            ));
                        }
                        if self.seeds.len() > 1 {
                            label.push_str(&format!("/seed={}", seed.unwrap()));
                        }
                        if label.is_empty() {
                            label.push_str("base");
                        }
                        cells.push(Cell::new(label, cfg));
                    }
                }
            }
        }
        cells
    }
}

/// An axis: empty means "hold at base" (one `None` pass-through).
fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
    if values.is_empty() {
        vec![None]
    } else {
        values.iter().copied().map(Some).collect()
    }
}

fn axis_ref<T>(values: &[T]) -> Vec<Option<&T>> {
    if values.is_empty() {
        vec![None]
    } else {
        values.iter().map(Some).collect()
    }
}

/// Re-target a (possibly bursty) Poisson model at a different offered
/// load.
fn with_load(traffic: &TrafficModel, load: f64) -> TrafficModel {
    match traffic {
        TrafficModel::Poisson {
            sizes, flow_count, ..
        } => TrafficModel::Poisson {
            load,
            sizes: *sizes,
            flow_count: *flow_count,
        },
        TrafficModel::BurstyPoisson {
            sizes,
            flow_count,
            duty_cycle,
            burst_flows,
            ..
        } => TrafficModel::BurstyPoisson {
            load,
            sizes: *sizes,
            flow_count: *flow_count,
            duty_cycle: *duty_cycle,
            burst_flows: *burst_flows,
        },
        other => panic!("load axis requires a Poisson base workload, got {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ExperimentConfig {
        ExperimentConfig::quick(50)
    }

    #[test]
    fn grid_is_cartesian_in_declared_order() {
        let cells = SweepGrid::new(base())
            .variants([
                Variant::new("IRN", TransportKind::Irn, false),
                Variant::new("RoCE (PFC)", TransportKind::Roce, true),
            ])
            .ccs([CcKind::None, CcKind::Timely])
            .build();
        let labels: Vec<&str> = cells.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            ["IRN", "RoCE (PFC)", "IRN + Timely", "RoCE (PFC) + Timely"]
        );
        assert_eq!(cells[1].config().transport, TransportKind::Roce);
        assert!(cells[1].config().pfc);
        assert_eq!(cells[2].config().cc, CcKind::Timely);
    }

    #[test]
    fn len_matches_build_and_labels_are_unique() {
        let grid = SweepGrid::new(base())
            .variants([
                Variant::new("A", TransportKind::Irn, false),
                Variant::new("B", TransportKind::Roce, true),
                Variant::new("C", TransportKind::Irn, true),
            ])
            .ccs([CcKind::None, CcKind::Timely, CcKind::Dcqcn])
            .loads([0.3, 0.5, 0.7, 0.9])
            .seeds([1, 2]);
        let cells = grid.build();
        assert_eq!(cells.len(), grid.len());
        assert_eq!(cells.len(), 3 * 3 * 4 * 2);
        let mut labels: Vec<&str> = cells.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), cells.len(), "labels must be unique");
    }

    #[test]
    fn unswept_axes_leave_base_untouched() {
        let cells = SweepGrid::new(base()).build();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].label(), "base");
        assert_eq!(cells[0].config().seed, base().seed);
    }

    #[test]
    #[should_panic(expected = "Poisson")]
    fn load_axis_rejects_non_poisson() {
        let mut cfg = base();
        cfg.traffic = TrafficModel::Incast {
            m: 4,
            total_bytes: 1000,
        };
        let _ = SweepGrid::new(cfg).loads([0.5, 0.7]).build();
    }
}
