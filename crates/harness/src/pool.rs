//! The distributed executor backend: a coordinator sharding one batch
//! across worker *processes* (spawned children or TCP peers) speaking
//! the `work-v1` protocol.
//!
//! The design follows the centralized-coordinator shape of RDMA
//! control planes (RDMAvisor): one coordinator owns the submission
//! queue; workers are stateless and interchangeable. Each worker
//! connection is driven by one dispatcher thread that pulls the next
//! unclaimed cell, ships it as a work frame, and waits (bounded) for
//! the matching result frame. Results land in submission-indexed slots,
//! so the assembled output is **byte-identical to the in-process
//! executor at any worker count** — the same guarantee, one seam up.
//!
//! Robustness is first-class, not best-effort:
//!
//! - **Per-cell timeout** — a hung worker forfeits its cell.
//! - **Bounded retry with reassignment** — a cell lost to a worker
//!   death or timeout goes back to the front of the queue for the next
//!   live worker; each cell gets at most `max_attempts` tries.
//! - **Quorum** — when live workers drop below `quorum` with work
//!   remaining, the batch is abandoned with a typed
//!   [`HarnessError::QuorumLost`] carrying the completed/total counts
//!   for the caller's partial-results report.
//!
//! Because cells are pure functions of their scenarios, a retried cell
//! cannot change any byte; duplicated late results are dropped
//! first-write-wins.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use irn_telemetry::{TraceFilter, TraceSpec};
use serde::json::{self, Value};
use serde::Serialize;

use crate::cell::Cell;
use crate::error::HarnessError;
use crate::exec::{CellOutcome, Executor};
use crate::wire::{self, Frame};

/// How to reach one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerSpec {
    /// Spawn a local worker process speaking `work-v1` on its
    /// stdin/stdout (e.g. `repro worker`). `argv[0]` is the program.
    Spawn {
        /// Program and arguments.
        argv: Vec<String>,
    },
    /// Connect to a listening worker (`repro worker --listen ADDR`).
    Connect {
        /// `host:port` of the listener.
        addr: String,
    },
}

impl WorkerSpec {
    fn label(&self, index: usize) -> String {
        match self {
            WorkerSpec::Spawn { .. } => format!("spawn#{index}"),
            WorkerSpec::Connect { addr } => addr.clone(),
        }
    }
}

/// Coordinator policy knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// The fleet, one spec per worker.
    pub specs: Vec<WorkerSpec>,
    /// Per-cell wall-clock budget on a worker; past it the cell is
    /// forfeited and reassigned (and the worker is presumed hung and
    /// dropped from the fleet).
    pub cell_timeout: Duration,
    /// Maximum tries per cell across the whole fleet before the batch
    /// fails with [`HarnessError::CellFailed`].
    pub max_attempts: usize,
    /// Minimum live workers; below this (with work remaining) the
    /// batch is abandoned with [`HarnessError::QuorumLost`].
    pub quorum: usize,
    /// Emit live per-cell progress lines on stderr (`[pool] …`).
    /// Retry/reassignment and worker-drop warnings are printed
    /// regardless — failures are never silent.
    pub progress: bool,
    /// Mirror every fleet event (cell completions, retries, worker
    /// drops, the batch summary) as NDJSON (`fleet-progress-v1`) to
    /// this file. Timing class: wall clocks and worker assignment are
    /// nondeterministic; nothing here feeds result bytes.
    pub progress_json: Option<PathBuf>,
}

impl PoolConfig {
    /// A config with the default policy: 300 s per cell, 3 attempts,
    /// quorum 1 (the batch survives down to a single live worker),
    /// progress lines off.
    pub fn new(specs: Vec<WorkerSpec>) -> PoolConfig {
        PoolConfig {
            specs,
            cell_timeout: Duration::from_secs(300),
            max_attempts: 3,
            quorum: 1,
            progress: false,
            progress_json: None,
        }
    }
}

/// Why one attempt on one worker failed — the retry/reassignment
/// reason logged with the worker id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The connection died: write/read failure or EOF (worker process
    /// death, socket closed).
    Death,
    /// The cell overran [`PoolConfig::cell_timeout`]; the worker is
    /// presumed hung.
    Timeout,
    /// The worker sent something undecodable or protocol-violating.
    Garbage,
    /// The worker stayed healthy but answered with an error frame.
    ErrorFrame,
}

impl FailReason {
    /// Stable lowercase label used in stderr lines and progress JSON.
    pub fn label(self) -> &'static str {
        match self {
            FailReason::Death => "death",
            FailReason::Timeout => "timeout",
            FailReason::Garbage => "garbage",
            FailReason::ErrorFrame => "error-frame",
        }
    }

    /// Whether the connection can be trusted for further work. Only a
    /// worker-reported error frame leaves it healthy.
    fn conn_dead(self) -> bool {
        self != FailReason::ErrorFrame
    }
}

/// Per-worker observations from the last batch (determinism class
/// `timing`; reported on stderr and in the bench-trajectory JSON,
/// never in artifact envelopes).
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Display name (`spawn#i` or the connect address).
    pub name: String,
    /// Cells this worker completed.
    pub cells: usize,
    /// Summed worker-side wall-clock seconds over those cells.
    pub cell_wall_s: f64,
    /// Failed attempts charged to this worker (timeouts, deaths,
    /// worker-reported errors).
    pub failures: usize,
    /// False once the coordinator dropped the worker from the fleet.
    pub alive: bool,
    /// The last failure's description, if any.
    pub last_error: Option<String>,
}

impl WorkerStats {
    fn new(name: String) -> WorkerStats {
        WorkerStats {
            name,
            cells: 0,
            cell_wall_s: 0.0,
            failures: 0,
            alive: true,
            last_error: None,
        }
    }
}

/// The distributed [`Executor`]: shards each batch across the
/// configured worker fleet.
pub struct WorkerPool {
    cfg: PoolConfig,
    stats: Mutex<Vec<WorkerStats>>,
}

impl WorkerPool {
    /// Build a pool. Panics on an empty fleet or a quorum the fleet
    /// can never satisfy — both are caller (CLI-layer) validation
    /// bugs, not runtime conditions.
    pub fn new(cfg: PoolConfig) -> WorkerPool {
        assert!(
            !cfg.specs.is_empty(),
            "worker pool needs at least one worker"
        );
        assert!(
            (1..=cfg.specs.len()).contains(&cfg.quorum),
            "quorum {} impossible with {} worker(s)",
            cfg.quorum,
            cfg.specs.len()
        );
        assert!(cfg.max_attempts >= 1, "cells need at least one attempt");
        WorkerPool {
            stats: Mutex::new(
                cfg.specs
                    .iter()
                    .enumerate()
                    .map(|(i, s)| WorkerStats::new(s.label(i)))
                    .collect(),
            ),
            cfg,
        }
    }

    /// Per-worker observations from the most recent batch (zeroed
    /// counters before the first).
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.stats.lock().expect("stats lock").clone()
    }
}

// ---------------------------------------------------------------------
// One worker connection
// ---------------------------------------------------------------------

/// A live connection to one worker: a writer for work frames, a
/// channel of incoming lines (pumped by a detached reader thread — it
/// exits on EOF, which killing the connection forces), and the handle
/// needed to force that EOF.
struct Conn {
    writer: Box<dyn Write + Send>,
    lines: Receiver<std::io::Result<String>>,
    child: Option<Child>,
    tcp: Option<TcpStream>,
}

impl Conn {
    fn open(spec: &WorkerSpec) -> std::io::Result<Conn> {
        match spec {
            WorkerSpec::Spawn { argv } => {
                let (prog, rest) = argv.split_first().ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "empty spawn argv")
                })?;
                let mut child = Command::new(prog)
                    .args(rest)
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::inherit())
                    .spawn()?;
                let stdin = child.stdin.take().expect("piped stdin");
                let stdout = child.stdout.take().expect("piped stdout");
                Ok(Conn {
                    writer: Box::new(stdin),
                    lines: spawn_reader(BufReader::new(stdout)),
                    child: Some(child),
                    tcp: None,
                })
            }
            WorkerSpec::Connect { addr } => {
                let stream = TcpStream::connect(addr)?;
                let reader = stream.try_clone()?;
                Ok(Conn {
                    writer: Box::new(stream.try_clone()?),
                    lines: spawn_reader(BufReader::new(reader)),
                    child: None,
                    tcp: Some(stream),
                })
            }
        }
    }

    /// Force the connection down: kill the child / shut the socket.
    /// The reader thread sees EOF and exits; any blocked receive gets
    /// a disconnect. Also reaps a killed child so no zombie outlives
    /// the batch.
    fn kill(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(tcp) = &self.tcp {
            let _ = tcp.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Pump lines off a reader into a channel from a detached thread, so
/// dispatchers can wait with a timeout. The thread exits at EOF or
/// when the receiver is dropped.
fn spawn_reader(reader: impl BufRead + Send + 'static) -> Receiver<std::io::Result<String>> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in reader.lines() {
            let stop = line.is_err();
            if tx.send(line).is_err() || stop {
                break;
            }
        }
    });
    rx
}

/// Why one attempt failed, classified for retry logging and fleet
/// policy (a dead connection drops the worker from the fleet).
struct AttemptError {
    detail: String,
    reason: FailReason,
}

impl AttemptError {
    fn conn_dead(&self) -> bool {
        self.reason.conn_dead()
    }
}

/// Run one cell on one worker: ship the work frame, wait (bounded) for
/// the matching result.
fn attempt(
    conn: &mut Conn,
    id: usize,
    cell: &Cell,
    timeout: Duration,
    trace: Option<&TraceSpec>,
) -> Result<CellOutcome, AttemptError> {
    let fail = |reason: FailReason, detail: String| AttemptError { detail, reason };
    let frame = wire::encode_work(id as u64, cell.scenario(), trace);
    conn.writer
        .write_all(frame.as_bytes())
        .and_then(|()| conn.writer.write_all(b"\n"))
        .and_then(|()| conn.writer.flush())
        .map_err(|e| fail(FailReason::Death, format!("write failed: {e}")))?;

    let deadline = Instant::now() + timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let line = match conn.lines.recv_timeout(remaining) {
            Ok(Ok(line)) => line,
            Ok(Err(e)) => return Err(fail(FailReason::Death, format!("read failed: {e}"))),
            Err(RecvTimeoutError::Timeout) => {
                return Err(fail(
                    FailReason::Timeout,
                    format!("timed out after {timeout:.1?}"),
                ))
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(fail(
                    FailReason::Death,
                    "worker connection closed".to_string(),
                ))
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match wire::decode(&line) {
            Ok(Frame::Result {
                id: rid,
                wall_s,
                result,
                trace: chunk,
            }) if rid == id as u64 => {
                return Ok(CellOutcome {
                    result: *result,
                    wall: Duration::from_secs_f64(wall_s.max(0.0)),
                    trace: chunk,
                })
            }
            Ok(Frame::Error { id: eid, message }) if eid.is_none() || eid == Some(id as u64) => {
                // The worker answered: the connection is healthy, the
                // cell (or our frame) is the problem.
                return Err(AttemptError {
                    detail: format!("worker reported: {message}"),
                    reason: FailReason::ErrorFrame,
                });
            }
            Ok(other) => {
                return Err(fail(
                    FailReason::Garbage,
                    format!(
                        "protocol violation: unexpected frame {other:?} while cell {id} in flight"
                    ),
                ))
            }
            Err(e) => return Err(fail(FailReason::Garbage, format!("undecodable frame: {e}"))),
        }
    }
}

// ---------------------------------------------------------------------
// The coordinator
// ---------------------------------------------------------------------

/// The schema tag written as the first field of every progress line.
pub const PROGRESS_SCHEMA: &str = "fleet-progress-v1";

/// Fleet progress sink shared by every dispatcher thread: optional
/// human lines on stderr, optional NDJSON mirror. Failure/warning
/// lines print regardless of the `progress` knob; the JSON mirror gets
/// every event. All of it is timing-class observation.
struct Progress {
    stderr: bool,
    json: Mutex<Option<std::io::BufWriter<std::fs::File>>>,
}

impl Progress {
    fn open(cfg: &PoolConfig) -> Result<Progress, HarnessError> {
        let json = match &cfg.progress_json {
            None => None,
            Some(path) => Some(std::io::BufWriter::new(
                std::fs::File::create(path).map_err(|e| HarnessError::ProgressUnavailable {
                    path: path.display().to_string(),
                    detail: e.to_string(),
                })?,
            )),
        };
        Ok(Progress {
            stderr: cfg.progress,
            json: Mutex::new(json),
        })
    }

    /// Emit one event. `always` forces the stderr line even with
    /// progress lines off (used for warnings and failures). `fields`
    /// follow the `schema` and `event` keys in the JSON mirror.
    fn emit(&self, always: bool, event: &str, human: &str, fields: Vec<(String, Value)>) {
        if self.stderr || always {
            eprintln!("{human}");
        }
        if let Some(w) = self.json.lock().expect("progress sink").as_mut() {
            let mut obj = vec![
                ("schema".to_string(), PROGRESS_SCHEMA.to_json()),
                ("event".to_string(), event.to_json()),
            ];
            obj.extend(fields);
            let _ = writeln!(w, "{}", json::to_string(&Value::Object(obj)));
            let _ = w.flush();
        }
    }
}

/// Shared batch state behind one mutex; the condvar wakes dispatchers
/// on new pending work and the supervisor on completion/failure.
struct BatchState {
    pending: VecDeque<usize>,
    attempts: Vec<usize>,
    slots: Vec<Option<CellOutcome>>,
    done: usize,
    live: usize,
    fatal: Option<HarnessError>,
}

impl Executor for WorkerPool {
    fn run_cells(
        &self,
        cells: &[Cell],
        trace: Option<&TraceSpec>,
    ) -> Result<Vec<CellOutcome>, HarnessError> {
        // Fail fast on a malformed filter instead of letting every
        // worker report it back per-cell.
        if let Some(spec) = trace {
            TraceFilter::parse(&spec.filter)
                .map_err(|detail| HarnessError::BadTraceFilter { detail })?;
        }
        let progress = Progress::open(&self.cfg)?;
        let total = cells.len();
        let mut run_stats: Vec<WorkerStats> = self
            .cfg
            .specs
            .iter()
            .enumerate()
            .map(|(i, s)| WorkerStats::new(s.label(i)))
            .collect();
        if total == 0 {
            *self.stats.lock().expect("stats lock") = run_stats;
            return Ok(Vec::new());
        }

        let state = Mutex::new(BatchState {
            pending: (0..total).collect(),
            attempts: vec![0; total],
            slots: (0..total).map(|_| None).collect(),
            done: 0,
            live: self.cfg.specs.len(),
            fatal: None,
        });
        let cvar = Condvar::new();
        let stats_out: Vec<Mutex<Option<WorkerStats>>> =
            self.cfg.specs.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for (w, spec) in self.cfg.specs.iter().enumerate() {
                let state = &state;
                let cvar = &cvar;
                let stats_out = &stats_out;
                let cfg = &self.cfg;
                let progress = &progress;
                scope.spawn(move || {
                    let stats = dispatch(w, spec, cells, cfg, state, cvar, progress, trace);
                    *stats_out[w].lock().expect("stats slot") = Some(stats);
                });
            }
            // Supervise: wake on every completion or fleet change.
            let mut st = state.lock().expect("state lock");
            while st.fatal.is_none() && st.done < total {
                st = cvar.wait(st).expect("state lock");
            }
            // On failure, dispatchers blocked on a slow cell would
            // otherwise run out their full timeout; fatal is already
            // set, so they exit at their next state check. Nothing to
            // force here — their connections die with their Conn drop.
            drop(st);
        });

        for (dst, src) in run_stats.iter_mut().zip(&stats_out) {
            if let Some(s) = src.lock().expect("stats slot").take() {
                *dst = s;
            }
        }
        *self.stats.lock().expect("stats lock") = run_stats;

        let mut st = state.into_inner().expect("state lock");
        let ok = st.fatal.is_none();
        progress.emit(
            false,
            "batch",
            &format!(
                "[pool] batch {}: {}/{} cells",
                if ok { "complete" } else { "abandoned" },
                st.done,
                total
            ),
            vec![
                ("done".to_string(), (st.done as u64).to_json()),
                ("total".to_string(), (total as u64).to_json()),
                ("ok".to_string(), ok.to_json()),
            ],
        );
        if let Some(fatal) = st.fatal.take() {
            return Err(fatal);
        }
        Ok(st
            .slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("cell {i} has no outcome")))
            .collect())
    }

    fn concurrency(&self) -> usize {
        self.cfg.specs.len()
    }
}

/// One worker's dispatcher loop: connect, then pull-ship-collect until
/// the batch finishes, the fleet fails, or this worker dies.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    w: usize,
    spec: &WorkerSpec,
    cells: &[Cell],
    cfg: &PoolConfig,
    state: &Mutex<BatchState>,
    cvar: &Condvar,
    progress: &Progress,
    trace: Option<&TraceSpec>,
) -> WorkerStats {
    let total = cells.len();
    let mut stats = WorkerStats::new(spec.label(w));

    /// Drop this worker from the fleet, failing the batch if the
    /// remaining fleet is below quorum with work left.
    fn retire(st: &mut BatchState, quorum: usize, total: usize) {
        st.live -= 1;
        if st.live < quorum && st.done < total && st.fatal.is_none() {
            st.fatal = Some(HarnessError::QuorumLost {
                live: st.live,
                quorum,
                completed: st.done,
                total,
            });
        }
    }

    let mut conn = match Conn::open(spec) {
        Ok(conn) => conn,
        Err(e) => {
            stats.alive = false;
            stats.last_error = Some(
                HarnessError::WorkerUnavailable {
                    worker: stats.name.clone(),
                    detail: e.to_string(),
                }
                .to_string(),
            );
            let mut st = state.lock().expect("state lock");
            retire(&mut st, cfg.quorum, total);
            cvar.notify_all();
            drop(st);
            progress.emit(
                true,
                "worker-dropped",
                &format!("[pool] worker {}: unavailable: {e}", stats.name),
                vec![
                    ("worker".to_string(), stats.name.to_json()),
                    ("reason".to_string(), "unavailable".to_json()),
                    ("detail".to_string(), e.to_string().to_json()),
                ],
            );
            return stats;
        }
    };

    loop {
        // Claim the next cell, or wait for one to be reassigned.
        let idx = {
            let mut st = state.lock().expect("state lock");
            loop {
                if st.fatal.is_some() || st.done == total {
                    return stats;
                }
                if let Some(idx) = st.pending.pop_front() {
                    break idx;
                }
                st = cvar.wait(st).expect("state lock");
            }
        };

        match attempt(&mut conn, idx, &cells[idx], cfg.cell_timeout, trace) {
            Ok(outcome) => {
                stats.cells += 1;
                stats.cell_wall_s += outcome.wall.as_secs_f64();
                let wall_s = outcome.wall.as_secs_f64();
                let slow = outcome.wall * 2 >= cfg.cell_timeout;
                let mut st = state.lock().expect("state lock");
                // First write wins: a reassigned twin of this cell may
                // already have landed; results are identical anyway.
                if st.slots[idx].is_none() {
                    st.slots[idx] = Some(outcome);
                    st.done += 1;
                }
                let done = st.done;
                drop(st);
                cvar.notify_all();
                progress.emit(
                    false,
                    "cell",
                    &format!(
                        "[pool] {}: cell #{idx} '{}' done in {wall_s:.2}s [{done}/{total}]",
                        stats.name,
                        cells[idx].label()
                    ),
                    vec![
                        ("worker".to_string(), stats.name.to_json()),
                        ("cell".to_string(), (idx as u64).to_json()),
                        ("label".to_string(), cells[idx].label().to_json()),
                        ("wall_s".to_string(), wall_s.to_json()),
                        ("done".to_string(), (done as u64).to_json()),
                        ("total".to_string(), (total as u64).to_json()),
                    ],
                );
                if slow {
                    progress.emit(
                        true,
                        "slow-cell",
                        &format!(
                            "[pool] {}: slow cell #{idx} '{}': {wall_s:.2}s is over half \
                             the {:.0?} timeout — a reassignment of this cell would be \
                             expensive",
                            stats.name,
                            cells[idx].label(),
                            cfg.cell_timeout
                        ),
                        vec![
                            ("worker".to_string(), stats.name.to_json()),
                            ("cell".to_string(), (idx as u64).to_json()),
                            ("label".to_string(), cells[idx].label().to_json()),
                            ("wall_s".to_string(), wall_s.to_json()),
                            (
                                "timeout_s".to_string(),
                                cfg.cell_timeout.as_secs_f64().to_json(),
                            ),
                        ],
                    );
                }
            }
            Err(err) => {
                stats.failures += 1;
                stats.last_error = Some(err.detail.clone());
                let reason = err.reason;
                let conn_dead = err.conn_dead();
                let mut st = state.lock().expect("state lock");
                st.attempts[idx] += 1;
                let attempt_no = st.attempts[idx];
                let exhausted = attempt_no >= cfg.max_attempts;
                if exhausted {
                    if st.fatal.is_none() {
                        st.fatal = Some(HarnessError::CellFailed {
                            index: idx,
                            label: cells[idx].label().to_string(),
                            attempts: st.attempts[idx],
                            detail: err.detail.clone(),
                            completed: st.done,
                            total,
                        });
                    }
                } else if conn_dead {
                    // Reassign at the front so a live worker picks the
                    // orphan up before new work.
                    st.pending.push_front(idx);
                } else {
                    // Healthy connection, failing cell: retry later,
                    // preferably elsewhere.
                    st.pending.push_back(idx);
                }
                if conn_dead {
                    stats.alive = false;
                    retire(&mut st, cfg.quorum, total);
                }
                cvar.notify_all();
                drop(st);
                progress.emit(
                    true,
                    "retry",
                    &format!(
                        "[pool] worker {}: cell #{idx} '{}' attempt {attempt_no}/{} failed \
                         (reason: {}): {}{}",
                        stats.name,
                        cells[idx].label(),
                        cfg.max_attempts,
                        reason.label(),
                        err.detail,
                        if exhausted {
                            "; attempts exhausted — batch fails"
                        } else if conn_dead {
                            "; reassigning to the next live worker"
                        } else {
                            "; requeued for retry"
                        },
                    ),
                    vec![
                        ("worker".to_string(), stats.name.to_json()),
                        ("cell".to_string(), (idx as u64).to_json()),
                        ("label".to_string(), cells[idx].label().to_json()),
                        ("reason".to_string(), reason.label().to_json()),
                        ("attempt".to_string(), (attempt_no as u64).to_json()),
                        (
                            "max_attempts".to_string(),
                            (cfg.max_attempts as u64).to_json(),
                        ),
                        ("detail".to_string(), err.detail.to_json()),
                        ("exhausted".to_string(), exhausted.to_json()),
                    ],
                );
                if conn_dead {
                    progress.emit(
                        true,
                        "worker-dropped",
                        &format!(
                            "[pool] worker {}: dropped from the fleet (reason: {})",
                            stats.name,
                            reason.label()
                        ),
                        vec![
                            ("worker".to_string(), stats.name.to_json()),
                            ("reason".to_string(), reason.label().to_json()),
                        ],
                    );
                    conn.kill();
                    return stats;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_label_spawn_and_connect_differently() {
        let s = WorkerSpec::Spawn {
            argv: vec!["repro".into(), "worker".into()],
        };
        assert_eq!(s.label(2), "spawn#2");
        let c = WorkerSpec::Connect {
            addr: "127.0.0.1:7401".into(),
        };
        assert_eq!(c.label(0), "127.0.0.1:7401");
    }

    #[test]
    fn unspawnable_fleet_fails_with_quorum_loss_not_hang() {
        let pool = WorkerPool::new(PoolConfig::new(vec![
            WorkerSpec::Spawn {
                argv: vec!["/nonexistent/worker-binary".into()],
            },
            WorkerSpec::Connect {
                // Reserved port on localhost that nothing listens on —
                // connect fails fast.
                addr: "127.0.0.1:1".into(),
            },
        ]));
        let cells = vec![crate::Cell::new(
            "unreachable",
            irn_core::ExperimentConfig::quick(10),
        )];
        let err = pool.run_cells(&cells, None).unwrap_err();
        assert!(
            matches!(
                err,
                HarnessError::QuorumLost {
                    live: 0,
                    completed: 0,
                    ..
                }
            ),
            "{err}"
        );
        let stats = pool.worker_stats();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| !s.alive));
        assert!(stats.iter().all(|s| s.last_error.is_some()));
    }

    #[test]
    fn empty_batch_never_contacts_the_fleet() {
        let pool = WorkerPool::new(PoolConfig::new(vec![WorkerSpec::Connect {
            addr: "127.0.0.1:1".into(),
        }]));
        assert!(pool.run_cells(&[], None).unwrap().is_empty());
        assert!(pool.worker_stats().iter().all(|s| s.alive));
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn impossible_quorum_is_a_construction_error() {
        let mut cfg = PoolConfig::new(vec![WorkerSpec::Connect {
            addr: "127.0.0.1:1".into(),
        }]);
        cfg.quorum = 2;
        let _ = WorkerPool::new(cfg);
    }
}
