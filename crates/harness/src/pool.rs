//! The distributed executor backend: a coordinator sharding one batch
//! across worker *processes* (spawned children or TCP peers) speaking
//! the `work-v1` protocol.
//!
//! The design follows the centralized-coordinator shape of RDMA
//! control planes (RDMAvisor): one coordinator owns the submission
//! queue; workers are stateless and interchangeable. Each worker
//! connection is driven by one dispatcher thread that pulls the next
//! unclaimed cell, ships it as a work frame, and waits (bounded) for
//! the matching result frame. Results land in submission-indexed slots,
//! so the assembled output is **byte-identical to the in-process
//! executor at any worker count** — the same guarantee, one seam up.
//!
//! Robustness is first-class, not best-effort:
//!
//! - **Per-cell timeout** — a hung worker forfeits its cell.
//! - **Bounded retry with reassignment** — a cell lost to a worker
//!   death or timeout goes back to the front of the queue for the next
//!   live worker; each cell gets at most `max_attempts` tries.
//! - **Quorum** — when live workers drop below `quorum` with work
//!   remaining, the batch is abandoned with a typed
//!   [`HarnessError::QuorumLost`] carrying the completed/total counts
//!   for the caller's partial-results report.
//!
//! Because cells are pure functions of their scenarios, a retried cell
//! cannot change any byte; duplicated late results are dropped
//! first-write-wins.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::cell::Cell;
use crate::error::HarnessError;
use crate::exec::{CellOutcome, Executor};
use crate::wire::{self, Frame};

/// How to reach one worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerSpec {
    /// Spawn a local worker process speaking `work-v1` on its
    /// stdin/stdout (e.g. `repro worker`). `argv[0]` is the program.
    Spawn {
        /// Program and arguments.
        argv: Vec<String>,
    },
    /// Connect to a listening worker (`repro worker --listen ADDR`).
    Connect {
        /// `host:port` of the listener.
        addr: String,
    },
}

impl WorkerSpec {
    fn label(&self, index: usize) -> String {
        match self {
            WorkerSpec::Spawn { .. } => format!("spawn#{index}"),
            WorkerSpec::Connect { addr } => addr.clone(),
        }
    }
}

/// Coordinator policy knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// The fleet, one spec per worker.
    pub specs: Vec<WorkerSpec>,
    /// Per-cell wall-clock budget on a worker; past it the cell is
    /// forfeited and reassigned (and the worker is presumed hung and
    /// dropped from the fleet).
    pub cell_timeout: Duration,
    /// Maximum tries per cell across the whole fleet before the batch
    /// fails with [`HarnessError::CellFailed`].
    pub max_attempts: usize,
    /// Minimum live workers; below this (with work remaining) the
    /// batch is abandoned with [`HarnessError::QuorumLost`].
    pub quorum: usize,
}

impl PoolConfig {
    /// A config with the default policy: 300 s per cell, 3 attempts,
    /// quorum 1 (the batch survives down to a single live worker).
    pub fn new(specs: Vec<WorkerSpec>) -> PoolConfig {
        PoolConfig {
            specs,
            cell_timeout: Duration::from_secs(300),
            max_attempts: 3,
            quorum: 1,
        }
    }
}

/// Per-worker observations from the last batch (determinism class
/// `timing`; reported on stderr and in the bench-trajectory JSON,
/// never in artifact envelopes).
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Display name (`spawn#i` or the connect address).
    pub name: String,
    /// Cells this worker completed.
    pub cells: usize,
    /// Summed worker-side wall-clock seconds over those cells.
    pub cell_wall_s: f64,
    /// Failed attempts charged to this worker (timeouts, deaths,
    /// worker-reported errors).
    pub failures: usize,
    /// False once the coordinator dropped the worker from the fleet.
    pub alive: bool,
    /// The last failure's description, if any.
    pub last_error: Option<String>,
}

impl WorkerStats {
    fn new(name: String) -> WorkerStats {
        WorkerStats {
            name,
            cells: 0,
            cell_wall_s: 0.0,
            failures: 0,
            alive: true,
            last_error: None,
        }
    }
}

/// The distributed [`Executor`]: shards each batch across the
/// configured worker fleet.
pub struct WorkerPool {
    cfg: PoolConfig,
    stats: Mutex<Vec<WorkerStats>>,
}

impl WorkerPool {
    /// Build a pool. Panics on an empty fleet or a quorum the fleet
    /// can never satisfy — both are caller (CLI-layer) validation
    /// bugs, not runtime conditions.
    pub fn new(cfg: PoolConfig) -> WorkerPool {
        assert!(
            !cfg.specs.is_empty(),
            "worker pool needs at least one worker"
        );
        assert!(
            (1..=cfg.specs.len()).contains(&cfg.quorum),
            "quorum {} impossible with {} worker(s)",
            cfg.quorum,
            cfg.specs.len()
        );
        assert!(cfg.max_attempts >= 1, "cells need at least one attempt");
        WorkerPool {
            stats: Mutex::new(
                cfg.specs
                    .iter()
                    .enumerate()
                    .map(|(i, s)| WorkerStats::new(s.label(i)))
                    .collect(),
            ),
            cfg,
        }
    }

    /// Per-worker observations from the most recent batch (zeroed
    /// counters before the first).
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.stats.lock().expect("stats lock").clone()
    }
}

// ---------------------------------------------------------------------
// One worker connection
// ---------------------------------------------------------------------

/// A live connection to one worker: a writer for work frames, a
/// channel of incoming lines (pumped by a detached reader thread — it
/// exits on EOF, which killing the connection forces), and the handle
/// needed to force that EOF.
struct Conn {
    writer: Box<dyn Write + Send>,
    lines: Receiver<std::io::Result<String>>,
    child: Option<Child>,
    tcp: Option<TcpStream>,
}

impl Conn {
    fn open(spec: &WorkerSpec) -> std::io::Result<Conn> {
        match spec {
            WorkerSpec::Spawn { argv } => {
                let (prog, rest) = argv.split_first().ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, "empty spawn argv")
                })?;
                let mut child = Command::new(prog)
                    .args(rest)
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::inherit())
                    .spawn()?;
                let stdin = child.stdin.take().expect("piped stdin");
                let stdout = child.stdout.take().expect("piped stdout");
                Ok(Conn {
                    writer: Box::new(stdin),
                    lines: spawn_reader(BufReader::new(stdout)),
                    child: Some(child),
                    tcp: None,
                })
            }
            WorkerSpec::Connect { addr } => {
                let stream = TcpStream::connect(addr)?;
                let reader = stream.try_clone()?;
                Ok(Conn {
                    writer: Box::new(stream.try_clone()?),
                    lines: spawn_reader(BufReader::new(reader)),
                    child: None,
                    tcp: Some(stream),
                })
            }
        }
    }

    /// Force the connection down: kill the child / shut the socket.
    /// The reader thread sees EOF and exits; any blocked receive gets
    /// a disconnect. Also reaps a killed child so no zombie outlives
    /// the batch.
    fn kill(&mut self) {
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(tcp) = &self.tcp {
            let _ = tcp.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Pump lines off a reader into a channel from a detached thread, so
/// dispatchers can wait with a timeout. The thread exits at EOF or
/// when the receiver is dropped.
fn spawn_reader(reader: impl BufRead + Send + 'static) -> Receiver<std::io::Result<String>> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in reader.lines() {
            let stop = line.is_err();
            if tx.send(line).is_err() || stop {
                break;
            }
        }
    });
    rx
}

/// Why one attempt failed, and whether the connection can be trusted
/// for further work.
struct AttemptError {
    detail: String,
    /// True when the worker is dead/hung/garbled: drop it from the
    /// fleet. False for a worker-reported error frame — the connection
    /// itself is healthy.
    conn_dead: bool,
}

/// Run one cell on one worker: ship the work frame, wait (bounded) for
/// the matching result.
fn attempt(
    conn: &mut Conn,
    id: usize,
    cell: &Cell,
    timeout: Duration,
) -> Result<CellOutcome, AttemptError> {
    let dead = |detail: String| AttemptError {
        detail,
        conn_dead: true,
    };
    let frame = wire::encode_work(id as u64, cell.scenario());
    conn.writer
        .write_all(frame.as_bytes())
        .and_then(|()| conn.writer.write_all(b"\n"))
        .and_then(|()| conn.writer.flush())
        .map_err(|e| dead(format!("write failed: {e}")))?;

    let deadline = Instant::now() + timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let line = match conn.lines.recv_timeout(remaining) {
            Ok(Ok(line)) => line,
            Ok(Err(e)) => return Err(dead(format!("read failed: {e}"))),
            Err(RecvTimeoutError::Timeout) => {
                return Err(dead(format!("timed out after {timeout:.1?}")))
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(dead("worker connection closed".to_string()))
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match wire::decode(&line) {
            Ok(Frame::Result {
                id: rid,
                wall_s,
                result,
            }) if rid == id as u64 => {
                return Ok(CellOutcome {
                    result: *result,
                    wall: Duration::from_secs_f64(wall_s.max(0.0)),
                })
            }
            Ok(Frame::Error { id: eid, message }) if eid.is_none() || eid == Some(id as u64) => {
                // The worker answered: the connection is healthy, the
                // cell (or our frame) is the problem.
                return Err(AttemptError {
                    detail: format!("worker reported: {message}"),
                    conn_dead: false,
                });
            }
            Ok(other) => {
                return Err(dead(format!(
                    "protocol violation: unexpected frame {other:?} while cell {id} in flight"
                )))
            }
            Err(e) => return Err(dead(format!("undecodable frame: {e}"))),
        }
    }
}

// ---------------------------------------------------------------------
// The coordinator
// ---------------------------------------------------------------------

/// Shared batch state behind one mutex; the condvar wakes dispatchers
/// on new pending work and the supervisor on completion/failure.
struct BatchState {
    pending: VecDeque<usize>,
    attempts: Vec<usize>,
    slots: Vec<Option<CellOutcome>>,
    done: usize,
    live: usize,
    fatal: Option<HarnessError>,
}

impl Executor for WorkerPool {
    fn run_cells(&self, cells: &[Cell]) -> Result<Vec<CellOutcome>, HarnessError> {
        let total = cells.len();
        let mut run_stats: Vec<WorkerStats> = self
            .cfg
            .specs
            .iter()
            .enumerate()
            .map(|(i, s)| WorkerStats::new(s.label(i)))
            .collect();
        if total == 0 {
            *self.stats.lock().expect("stats lock") = run_stats;
            return Ok(Vec::new());
        }

        let state = Mutex::new(BatchState {
            pending: (0..total).collect(),
            attempts: vec![0; total],
            slots: (0..total).map(|_| None).collect(),
            done: 0,
            live: self.cfg.specs.len(),
            fatal: None,
        });
        let cvar = Condvar::new();
        let stats_out: Vec<Mutex<Option<WorkerStats>>> =
            self.cfg.specs.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for (w, spec) in self.cfg.specs.iter().enumerate() {
                let state = &state;
                let cvar = &cvar;
                let stats_out = &stats_out;
                let cfg = &self.cfg;
                scope.spawn(move || {
                    let stats = dispatch(w, spec, cells, cfg, state, cvar);
                    *stats_out[w].lock().expect("stats slot") = Some(stats);
                });
            }
            // Supervise: wake on every completion or fleet change.
            let mut st = state.lock().expect("state lock");
            while st.fatal.is_none() && st.done < total {
                st = cvar.wait(st).expect("state lock");
            }
            // On failure, dispatchers blocked on a slow cell would
            // otherwise run out their full timeout; fatal is already
            // set, so they exit at their next state check. Nothing to
            // force here — their connections die with their Conn drop.
            drop(st);
        });

        for (dst, src) in run_stats.iter_mut().zip(&stats_out) {
            if let Some(s) = src.lock().expect("stats slot").take() {
                *dst = s;
            }
        }
        *self.stats.lock().expect("stats lock") = run_stats;

        let mut st = state.into_inner().expect("state lock");
        if let Some(fatal) = st.fatal.take() {
            return Err(fatal);
        }
        Ok(st
            .slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("cell {i} has no outcome")))
            .collect())
    }

    fn concurrency(&self) -> usize {
        self.cfg.specs.len()
    }
}

/// One worker's dispatcher loop: connect, then pull-ship-collect until
/// the batch finishes, the fleet fails, or this worker dies.
fn dispatch(
    w: usize,
    spec: &WorkerSpec,
    cells: &[Cell],
    cfg: &PoolConfig,
    state: &Mutex<BatchState>,
    cvar: &Condvar,
) -> WorkerStats {
    let total = cells.len();
    let mut stats = WorkerStats::new(spec.label(w));

    /// Drop this worker from the fleet, failing the batch if the
    /// remaining fleet is below quorum with work left.
    fn retire(st: &mut BatchState, quorum: usize, total: usize) {
        st.live -= 1;
        if st.live < quorum && st.done < total && st.fatal.is_none() {
            st.fatal = Some(HarnessError::QuorumLost {
                live: st.live,
                quorum,
                completed: st.done,
                total,
            });
        }
    }

    let mut conn = match Conn::open(spec) {
        Ok(conn) => conn,
        Err(e) => {
            stats.alive = false;
            stats.last_error = Some(
                HarnessError::WorkerUnavailable {
                    worker: stats.name.clone(),
                    detail: e.to_string(),
                }
                .to_string(),
            );
            let mut st = state.lock().expect("state lock");
            retire(&mut st, cfg.quorum, total);
            cvar.notify_all();
            return stats;
        }
    };

    loop {
        // Claim the next cell, or wait for one to be reassigned.
        let idx = {
            let mut st = state.lock().expect("state lock");
            loop {
                if st.fatal.is_some() || st.done == total {
                    return stats;
                }
                if let Some(idx) = st.pending.pop_front() {
                    break idx;
                }
                st = cvar.wait(st).expect("state lock");
            }
        };

        match attempt(&mut conn, idx, &cells[idx], cfg.cell_timeout) {
            Ok(outcome) => {
                stats.cells += 1;
                stats.cell_wall_s += outcome.wall.as_secs_f64();
                let mut st = state.lock().expect("state lock");
                // First write wins: a reassigned twin of this cell may
                // already have landed; results are identical anyway.
                if st.slots[idx].is_none() {
                    st.slots[idx] = Some(outcome);
                    st.done += 1;
                }
                cvar.notify_all();
            }
            Err(err) => {
                stats.failures += 1;
                stats.last_error = Some(err.detail.clone());
                let mut st = state.lock().expect("state lock");
                st.attempts[idx] += 1;
                if st.attempts[idx] >= cfg.max_attempts {
                    if st.fatal.is_none() {
                        st.fatal = Some(HarnessError::CellFailed {
                            index: idx,
                            label: cells[idx].label().to_string(),
                            attempts: st.attempts[idx],
                            detail: err.detail,
                            completed: st.done,
                            total,
                        });
                    }
                } else if err.conn_dead {
                    // Reassign at the front so a live worker picks the
                    // orphan up before new work.
                    st.pending.push_front(idx);
                } else {
                    // Healthy connection, failing cell: retry later,
                    // preferably elsewhere.
                    st.pending.push_back(idx);
                }
                if err.conn_dead {
                    stats.alive = false;
                    retire(&mut st, cfg.quorum, total);
                }
                cvar.notify_all();
                if err.conn_dead {
                    drop(st);
                    conn.kill();
                    return stats;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_label_spawn_and_connect_differently() {
        let s = WorkerSpec::Spawn {
            argv: vec!["repro".into(), "worker".into()],
        };
        assert_eq!(s.label(2), "spawn#2");
        let c = WorkerSpec::Connect {
            addr: "127.0.0.1:7401".into(),
        };
        assert_eq!(c.label(0), "127.0.0.1:7401");
    }

    #[test]
    fn unspawnable_fleet_fails_with_quorum_loss_not_hang() {
        let pool = WorkerPool::new(PoolConfig::new(vec![
            WorkerSpec::Spawn {
                argv: vec!["/nonexistent/worker-binary".into()],
            },
            WorkerSpec::Connect {
                // Reserved port on localhost that nothing listens on —
                // connect fails fast.
                addr: "127.0.0.1:1".into(),
            },
        ]));
        let cells = vec![crate::Cell::new(
            "unreachable",
            irn_core::ExperimentConfig::quick(10),
        )];
        let err = pool.run_cells(&cells).unwrap_err();
        assert!(
            matches!(
                err,
                HarnessError::QuorumLost {
                    live: 0,
                    completed: 0,
                    ..
                }
            ),
            "{err}"
        );
        let stats = pool.worker_stats();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| !s.alive));
        assert!(stats.iter().all(|s| s.last_error.is_some()));
    }

    #[test]
    fn empty_batch_never_contacts_the_fleet() {
        let pool = WorkerPool::new(PoolConfig::new(vec![WorkerSpec::Connect {
            addr: "127.0.0.1:1".into(),
        }]));
        assert!(pool.run_cells(&[]).unwrap().is_empty());
        assert!(pool.worker_stats().iter().all(|s| s.alive));
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn impossible_quorum_is_a_construction_error() {
        let mut cfg = PoolConfig::new(vec![WorkerSpec::Connect {
            addr: "127.0.0.1:1".into(),
        }]);
        cfg.quorum = 2;
        let _ = WorkerPool::new(cfg);
    }
}
