//! Order-independent aggregate statistics over replicate samples.

use serde::Serialize;

/// Mean / spread summary of one metric over N replicated runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Stats {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 when n < 2).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval for the mean:
    /// `t(0.975, n−1)·σ/√n`, using the Student-t quantile so small
    /// replicate counts (the common case — 3 or 5 seeds) are not
    /// anti-conservative; 0 when n < 2. Converges to the normal
    /// `1.96·σ/√n` as n grows.
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Stats {
    /// Aggregate `values`. The input is sorted internally, so the
    /// result is **independent of sample order** — floating-point
    /// accumulation happens in one canonical order no matter how the
    /// samples were produced or scheduled.
    pub fn from_values(values: &[f64]) -> Stats {
        assert!(!values.is_empty(), "no samples to aggregate");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let std_dev = if n < 2 {
            0.0
        } else {
            let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        let ci95 = if n < 2 {
            0.0
        } else {
            t95(n - 1) * std_dev / (n as f64).sqrt()
        };
        Stats {
            n,
            mean,
            std_dev,
            ci95,
            min: sorted[0],
            max: sorted[n - 1],
        }
    }
}

/// Two-sided 95% Student-t quantile for `df` degrees of freedom.
/// Tabulated for df ≤ 30 (replicate counts are single digits in
/// practice); the asymptotic normal value beyond.
fn t95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => 0.0,
        d if d <= TABLE.len() => TABLE[d - 1],
        _ => 1.96,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = Stats::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935299395).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn order_independent_to_the_bit() {
        let a = [0.1, 0.2, 0.3, 1e15, -1e15, 7.7];
        let mut b = a;
        b.reverse();
        let (sa, sb) = (Stats::from_values(&a), Stats::from_values(&b));
        assert_eq!(sa.mean.to_bits(), sb.mean.to_bits());
        assert_eq!(sa.std_dev.to_bits(), sb.std_dev.to_bits());
        assert_eq!(sa.ci95.to_bits(), sb.ci95.to_bits());
    }

    #[test]
    fn ci95_uses_student_t_at_small_n() {
        // n=5, df=4: half-width must be t(0.975,4)=2.776 standard
        // errors, not the normal 1.96 (42% anti-conservative at n=5).
        let s = Stats::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let se = s.std_dev / 5.0f64.sqrt();
        assert!((s.ci95 - 2.776 * se).abs() < 1e-12);
        // n=3, df=2: 4.303 standard errors.
        let s3 = Stats::from_values(&[1.0, 2.0, 3.0]);
        let se3 = s3.std_dev / 3.0f64.sqrt();
        assert!((s3.ci95 - 4.303 * se3).abs() < 1e-12);
        // Large n converges to the normal quantile.
        let big: Vec<f64> = (0..100).map(f64::from).collect();
        let sb = Stats::from_values(&big);
        assert!((sb.ci95 - 1.96 * sb.std_dev / 10.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_no_spread() {
        let s = Stats::from_values(&[3.25]);
        assert_eq!((s.mean, s.std_dev, s.ci95), (3.25, 0.0, 0.0));
        assert_eq!((s.min, s.max), (3.25, 3.25));
    }
}
