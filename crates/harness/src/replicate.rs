//! Multi-seed replication: fan one cell out over N seeds, aggregate.
//!
//! The paper averages incast results over up to 100 repetitions; this
//! layer makes that a first-class operation. Seeds are canonicalized
//! (sorted, deduplicated) at construction, so the per-seed runs — and
//! every aggregate computed from them — are **independent of the order
//! the seeds were supplied or the runs completed in**.

use irn_core::RunResult;

use crate::cell::Cell;
use crate::error::HarnessError;
use crate::exec::Harness;
use crate::stats::Stats;

/// One cell fanned out over a set of seeds.
#[derive(Debug, Clone)]
pub struct Replicate {
    cell: Cell,
    seeds: Vec<u64>,
}

impl Replicate {
    /// Replicate `cell` over `seeds` (sorted and deduplicated; the
    /// cell's own seed is ignored in favor of the explicit set).
    pub fn new(cell: Cell, seeds: impl IntoIterator<Item = u64>) -> Replicate {
        let mut seeds: Vec<u64> = seeds.into_iter().collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert!(!seeds.is_empty(), "replicate needs at least one seed");
        Replicate { cell, seeds }
    }

    /// Replicate over `n` strided seeds: `base_seed + i·stride`.
    pub fn strided(cell: Cell, base_seed: u64, n: usize, stride: u64) -> Replicate {
        Replicate::new(cell, (0..n as u64).map(|i| base_seed + i * stride))
    }

    /// The canonical (sorted) seed set.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// The per-seed cells, in canonical seed order. Use this to merge
    /// several replicates into one flat harness batch (maximum
    /// parallelism), then rebuild results with
    /// [`Replicate::collect`].
    pub fn cells(&self) -> Vec<Cell> {
        self.seeds.iter().map(|&s| self.cell.with_seed(s)).collect()
    }

    /// Run the whole fan-out on `harness`.
    pub fn run(&self, harness: &Harness) -> ReplicateResult {
        self.collect(harness.run(&self.cells()))
    }

    /// Pair externally-run results (in [`Replicate::cells`] order) back
    /// with their seeds.
    pub fn collect(&self, runs: Vec<RunResult>) -> ReplicateResult {
        assert_eq!(runs.len(), self.seeds.len(), "one result per seed");
        ReplicateResult {
            label: self.cell.label().to_string(),
            runs: self.seeds.iter().copied().zip(runs).collect(),
        }
    }
}

/// The outcome of a replicated cell: per-seed runs in canonical seed
/// order, plus aggregate queries.
#[derive(Debug, Clone)]
pub struct ReplicateResult {
    /// The replicated cell's label.
    pub label: String,
    /// `(seed, result)` pairs, sorted by seed.
    pub runs: Vec<(u64, RunResult)>,
}

impl ReplicateResult {
    /// Aggregate `metric` over every run. Because runs are held in
    /// canonical seed order and [`Stats`] sorts its samples, the result
    /// does not depend on seed supply order or completion order.
    pub fn stats(&self, metric: impl Fn(&RunResult) -> f64) -> Stats {
        let values: Vec<f64> = self.runs.iter().map(|(_, r)| metric(r)).collect();
        Stats::from_values(&values)
    }

    /// The run for one seed, or a typed [`HarnessError::UnknownSeed`]
    /// naming the seeds that actually ran — a misspelled seed in a
    /// report query fails with a message instead of silently rendering
    /// nothing.
    pub fn result_for(&self, seed: u64) -> Result<&RunResult, HarnessError> {
        self.runs
            .iter()
            .find(|(s, _)| *s == seed)
            .map(|(_, r)| r)
            .ok_or_else(|| HarnessError::UnknownSeed {
                label: self.label.clone(),
                seed,
                known: self.runs.iter().map(|(s, _)| *s).collect(),
            })
    }

    /// The run for one seed, `None` when it never ran.
    #[deprecated(
        since = "0.1.0",
        note = "use `result_for`, which reports *which* seeds exist"
    )]
    pub fn run_for(&self, seed: u64) -> Option<&RunResult> {
        self.result_for(seed).ok()
    }
}

/// Many [`Replicate`]s flattened into **one** harness batch.
///
/// This is the demux layer behind multi-seed figures: every per-seed
/// cell of every replicate is submitted in one flat batch (maximum
/// parallelism — no per-replicate barrier), and the results are sliced
/// back into one [`ReplicateResult`] per replicate, in the order the
/// replicates were supplied. Because the executor returns results in
/// submission order, the demux — and everything rendered from it — is
/// independent of the job count.
#[derive(Debug, Clone)]
pub struct ReplicateSet {
    reps: Vec<Replicate>,
}

impl ReplicateSet {
    /// Bundle `reps` into one schedulable set.
    pub fn new(reps: Vec<Replicate>) -> ReplicateSet {
        ReplicateSet { reps }
    }

    /// The replicates, in supply order.
    pub fn replicates(&self) -> &[Replicate] {
        &self.reps
    }

    /// Total cell count across every replicate.
    pub fn cell_count(&self) -> usize {
        self.reps.iter().map(|r| r.seeds.len()).sum()
    }

    /// Every per-seed cell of every replicate, concatenated in
    /// replicate-supply order (each replicate's cells in canonical seed
    /// order). Submit this to a [`Harness`] — or splice it into a
    /// larger cross-artifact batch — then demux with
    /// [`ReplicateSet::collect`].
    pub fn cells(&self) -> Vec<Cell> {
        self.reps.iter().flat_map(|r| r.cells()).collect()
    }

    /// Slice a flat result vector (in [`ReplicateSet::cells`] order)
    /// back into one [`ReplicateResult`] per replicate.
    pub fn collect(&self, runs: Vec<RunResult>) -> Vec<ReplicateResult> {
        assert_eq!(runs.len(), self.cell_count(), "one result per cell");
        let mut it = runs.into_iter();
        self.reps
            .iter()
            .map(|r| r.collect(it.by_ref().take(r.seeds.len()).collect()))
            .collect()
    }

    /// Run the whole set on `harness` as one flat batch.
    pub fn run(&self, harness: &Harness) -> Vec<ReplicateResult> {
        self.collect(harness.run(&self.cells()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irn_core::ExperimentConfig;

    fn cell() -> Cell {
        Cell::new("incast", ExperimentConfig::quick(40))
    }

    #[test]
    fn seeds_are_canonicalized() {
        let r = Replicate::new(cell(), [9, 3, 3, 7]);
        assert_eq!(r.seeds(), &[3, 7, 9]);
        let cells = r.cells();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].config().seed, 3);
        assert_eq!(cells[2].config().seed, 9);
    }

    #[test]
    fn strided_seeds() {
        let r = Replicate::strided(cell(), 100, 3, 101);
        assert_eq!(r.seeds(), &[100, 201, 302]);
    }

    #[test]
    fn replicate_set_demuxes_by_replicate() {
        let set = ReplicateSet::new(vec![
            Replicate::new(cell(), [1, 2]),
            Replicate::new(cell(), [10, 20, 30]),
        ]);
        assert_eq!(set.cell_count(), 5);
        let cells = set.cells();
        assert_eq!(cells.len(), 5);
        assert_eq!(cells[1].config().seed, 2);
        assert_eq!(cells[4].config().seed, 30);
        // Demuxing a flat batch must agree with running each replicate
        // on its own.
        let h = Harness::new(2);
        let merged = set.run(&h);
        assert_eq!(merged.len(), 2);
        let solo = set.replicates()[1].run(&h);
        assert_eq!(merged[1].runs.len(), 3);
        for ((sa, a), (sb, b)) in merged[1].runs.iter().zip(&solo.runs) {
            assert_eq!(sa, sb);
            assert_eq!(a.events, b.events);
            assert_eq!(a.finished_at, b.finished_at);
        }
    }

    #[test]
    fn aggregation_ignores_seed_supply_order() {
        // Tiny real runs: the same seed set supplied in opposite orders
        // must aggregate to bit-identical statistics.
        let h = Harness::new(2);
        let a = Replicate::new(cell(), [11, 5, 8]).run(&h);
        let b = Replicate::new(cell(), [8, 11, 5]).run(&h);
        let (sa, sb) = (
            a.stats(|r| r.summary.avg_slowdown),
            b.stats(|r| r.summary.avg_slowdown),
        );
        assert_eq!(sa.mean.to_bits(), sb.mean.to_bits());
        assert_eq!(sa.ci95.to_bits(), sb.ci95.to_bits());
        assert_eq!(a.runs.len(), 3);
        assert!(a.result_for(8).is_ok());
        let err = a.result_for(4).unwrap_err();
        match &err {
            HarnessError::UnknownSeed { label, seed, known } => {
                assert_eq!(label, "incast");
                assert_eq!(*seed, 4);
                assert_eq!(known, &[5, 8, 11]);
            }
            other => panic!("wrong error: {other:?}"),
        }
        // The deprecated shim preserves the old Option surface.
        #[allow(deprecated)]
        {
            assert!(a.run_for(8).is_some());
            assert!(a.run_for(4).is_none());
        }
    }
}
