//! The worker side of the `work-v1` protocol: a serve loop that reads
//! work frames, runs each scenario, and streams result frames back.
//!
//! This is transport-agnostic — `repro worker` wires it to
//! stdin/stdout when spawned by a coordinator, or to an accepted TCP
//! stream when listening — and deliberately stateless: every work
//! frame carries its full scenario, so a worker can join or rejoin a
//! fleet at any time and any cell can be reassigned to any worker
//! without coordination.

use std::io::{BufRead, Write};

use crate::wire::{self, Frame};

/// Worker behavior knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerOptions {
    /// Testing hook for the coordinator's retry path: after answering
    /// this many work frames, read one more and exit **without
    /// responding** — simulating a worker dying mid-cell. `None` (the
    /// default) serves until EOF.
    pub exit_after: Option<usize>,
}

/// What a finished serve loop did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Work frames answered with a result frame.
    pub answered: usize,
    /// Frames answered with an error frame (bad scenario, protocol
    /// misuse, garbage lines).
    pub errors: usize,
    /// True when the loop ended via the [`WorkerOptions::exit_after`]
    /// hook rather than EOF.
    pub aborted: bool,
}

/// Serve the `work-v1` protocol until `input` reaches EOF: one result
/// (or error) frame per incoming line, flushed after every frame so a
/// pipelined coordinator never stalls.
///
/// Malformed lines and invalid scenarios are answered with error
/// frames — the worker stays up; killing it is the coordinator's
/// decision. I/O failure on either side ends the loop with the error.
pub fn serve(
    input: impl BufRead,
    mut output: impl Write,
    opts: WorkerOptions,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary {
        answered: 0,
        errors: 0,
        aborted: false,
    };
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match wire::decode(&line) {
            Ok(Frame::Work {
                id,
                scenario,
                trace,
            }) => {
                if opts.exit_after == Some(summary.answered) {
                    // Simulated mid-cell death: the frame is consumed
                    // and never answered, so the coordinator must
                    // detect the EOF and reassign cell `id`.
                    summary.aborted = true;
                    return Ok(summary);
                }
                // Validate the filter before burning the cell's runtime.
                let filter = match &trace {
                    None => Ok(None),
                    Some(spec) => irn_telemetry::TraceFilter::parse(&spec.filter)
                        .map(|f| Some((f, spec.capacity))),
                };
                match filter {
                    Err(detail) => {
                        summary.errors += 1;
                        wire::encode_error(Some(id), &format!("bad trace filter: {detail}"))
                    }
                    Ok(filter) => {
                        let start = std::time::Instant::now();
                        let (result, chunk) = match filter {
                            None => (irn_core::run(scenario.into_config()), None),
                            Some((f, capacity)) => {
                                // The frame id is the cell's submission
                                // index in the coordinator's batch, so
                                // chunks captured anywhere in the fleet
                                // stamp the same cell numbers.
                                let (result, chunk) =
                                    irn_telemetry::capture(id, f, capacity, || {
                                        irn_core::run(scenario.into_config())
                                    });
                                (result, Some(chunk))
                            }
                        };
                        summary.answered += 1;
                        wire::encode_result(
                            id,
                            start.elapsed().as_secs_f64(),
                            &result,
                            chunk.as_ref(),
                        )
                    }
                }
            }
            Ok(Frame::Result { id, .. }) => {
                summary.errors += 1;
                wire::encode_error(Some(id), "workers expect work frames, got a result frame")
            }
            Ok(Frame::Error { id, message }) => {
                summary.errors += 1;
                wire::encode_error(
                    id,
                    &format!("workers expect work frames, got error: {message}"),
                )
            }
            Err(e) => {
                summary.errors += 1;
                wire::encode_error(e.id, &e.message)
            }
        };
        output.write_all(reply.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use irn_core::{ExperimentConfig, Scenario, TopologySpec, TrafficModel};
    use serde::Serialize;

    fn scenario(seed: u64) -> Scenario {
        Scenario::from_config(
            "serve test",
            ExperimentConfig {
                topology: TopologySpec::SingleSwitch(4),
                traffic: TrafficModel::Incast {
                    m: 2,
                    total_bytes: 200_000,
                },
                ..ExperimentConfig::paper_default(2)
            }
            .with_seed(seed),
        )
        .unwrap()
    }

    #[test]
    fn serves_work_frames_and_matches_in_process_results() {
        let input = format!(
            "{}\n\n{}\n",
            wire::encode_work(0, &scenario(1), None),
            wire::encode_work(1, &scenario(2), None),
        );
        let mut out = Vec::new();
        let summary = serve(input.as_bytes(), &mut out, WorkerOptions::default()).unwrap();
        assert_eq!(summary.answered, 2);
        assert_eq!(summary.errors, 0);
        assert!(!summary.aborted);

        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            match wire::decode(line).unwrap() {
                Frame::Result { id, result, .. } => {
                    assert_eq!(id, i as u64);
                    let local = irn_core::run(scenario(i as u64 + 1).into_config());
                    assert_eq!(
                        result.to_json(),
                        local.to_json(),
                        "worker must be bit-exact"
                    );
                }
                other => panic!("wrong frame: {other:?}"),
            }
        }
    }

    #[test]
    fn garbage_and_misdirected_frames_get_error_replies() {
        let input = format!(
            "garbage\n{}\n{}\n",
            wire::encode_error(Some(4), "oops"),
            r#"{"frame":"work-v1","id":9,"scenario":{"nope":1}}"#,
        );
        let mut out = Vec::new();
        let summary = serve(input.as_bytes(), &mut out, WorkerOptions::default()).unwrap();
        assert_eq!(summary.answered, 0);
        assert_eq!(summary.errors, 3);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        // The bad-scenario reply keeps the cell id.
        match wire::decode(lines[2]).unwrap() {
            Frame::Error { id, .. } => assert_eq!(id, Some(9)),
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn exit_after_drops_the_fatal_frame_silently() {
        let input = format!(
            "{}\n{}\n",
            wire::encode_work(0, &scenario(1), None),
            wire::encode_work(1, &scenario(2), None),
        );
        let mut out = Vec::new();
        let summary = serve(
            input.as_bytes(),
            &mut out,
            WorkerOptions {
                exit_after: Some(1),
            },
        )
        .unwrap();
        assert!(summary.aborted);
        assert_eq!(summary.answered, 1);
        // Exactly one reply: frame 1 was consumed but never answered.
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 1);
    }
}
