//! One labeled experiment configuration.

use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::ExperimentConfig;

/// One cell of an experiment matrix: a labeled [`ExperimentConfig`].
///
/// The label is display-facing (it becomes a report row label or a
/// sweep coordinate); the config fully determines the simulation, so
/// two cells with equal configs produce identical results no matter
/// when or where they run.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Display label, e.g. `"IRN"` or `"RoCE (PFC) + Timely"`.
    pub label: String,
    /// The full experiment configuration.
    pub cfg: ExperimentConfig,
}

impl Cell {
    /// Build a cell.
    pub fn new(label: impl Into<String>, cfg: ExperimentConfig) -> Cell {
        Cell {
            label: label.into(),
            cfg,
        }
    }

    /// The common (transport, pfc, cc) cell shape used throughout the
    /// paper's figures.
    pub fn tpc(
        label: impl Into<String>,
        base: &ExperimentConfig,
        t: TransportKind,
        pfc: bool,
        cc: CcKind,
    ) -> Cell {
        Cell::new(
            label,
            base.clone().with_transport(t).with_pfc(pfc).with_cc(cc),
        )
    }

    /// Same cell re-keyed to a different seed (for [`crate::Replicate`]).
    pub fn with_seed(&self, seed: u64) -> Cell {
        Cell {
            label: self.label.clone(),
            cfg: self.cfg.clone().with_seed(seed),
        }
    }
}
