//! One labeled experiment configuration.

use irn_core::transport::cc::CcKind;
use irn_core::transport::config::TransportKind;
use irn_core::{ExperimentConfig, Scenario};

/// One cell of an experiment matrix: a validated, serializable
/// [`Scenario`].
///
/// The cell's label (its scenario's name) is display-facing — it
/// becomes a report row label or a sweep coordinate; the scenario fully
/// determines the simulation, so two cells with equal scenarios produce
/// identical results no matter when or where they run. Because a
/// scenario is JSON-round-trippable (`scenario-v1`), a cell *is* the
/// serializable work unit the distributed fan-out roadmap item needs: a
/// remote worker that parses the scenario and runs it returns
/// bit-identical results.
#[derive(Debug, Clone)]
pub struct Cell {
    scenario: Scenario,
}

impl Cell {
    /// Build a cell from a label and a config.
    ///
    /// Panics if the config is invalid — cells are constructed by
    /// experiment code (runners, sweeps, tests) from literal configs,
    /// so an invalid one is a programming error, not user input.
    /// User-supplied scenarios go through the non-panicking
    /// [`Scenario`] constructors and [`Cell::from_scenario`].
    pub fn new(label: impl Into<String>, cfg: ExperimentConfig) -> Cell {
        let label = label.into();
        let scenario = Scenario::from_config(label.clone(), cfg)
            .unwrap_or_else(|e| panic!("cell '{label}': invalid config: {e}"));
        Cell { scenario }
    }

    /// Wrap an already-validated scenario.
    pub fn from_scenario(scenario: Scenario) -> Cell {
        Cell { scenario }
    }

    /// The display label (the scenario name).
    pub fn label(&self) -> &str {
        self.scenario.name()
    }

    /// The full experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        self.scenario.config()
    }

    /// The underlying scenario (the serializable form of this cell).
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The common (transport, pfc, cc) cell shape used throughout the
    /// paper's figures.
    pub fn tpc(
        label: impl Into<String>,
        base: &ExperimentConfig,
        t: TransportKind,
        pfc: bool,
        cc: CcKind,
    ) -> Cell {
        Cell::new(
            label,
            base.clone().with_transport(t).with_pfc(pfc).with_cc(cc),
        )
    }

    /// Same cell re-keyed to a different seed (for [`crate::Replicate`]).
    pub fn with_seed(&self, seed: u64) -> Cell {
        Cell {
            scenario: self.scenario.with_seed(seed),
        }
    }
}
