//! The executor seam: one trait every batch runs through, with the
//! in-process thread pool as its reference implementation.
//!
//! [`Executor`] is the pluggable backend API: give it cells, get one
//! [`CellOutcome`] per cell **in submission order**. Everything above
//! this seam (plans, replicates, the global cross-artifact batch) is
//! backend-agnostic — the same code runs on the in-process
//! [`ThreadExecutor`] or on a multi-process [`crate::WorkerPool`], and
//! because every cell is a pure function of its scenario, the rendered
//! output is byte-identical across backends and parallelism levels.
//!
//! [`Harness`] is the handle the rest of the workspace holds: a cheap
//! clonable wrapper over an `Arc<dyn Executor>` whose `run`/`run_timed`
//! methods are thin forwarding shims. The channel/ordering plumbing
//! lives in exactly one place — [`ThreadExecutor::run_indexed`] — and
//! `jobs = 1` bypasses the pool entirely and runs inline, so serial
//! output is the definitional baseline every backend must match.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use irn_core::RunResult;
use irn_telemetry::{TraceChunk, TraceFilter, TraceSpec};

use crate::cell::Cell;
use crate::error::HarnessError;

/// One executed cell: its result plus the wall-clock time it took on
/// whatever worker ran it.
///
/// The result is deterministic (a pure function of the cell's
/// scenario); the duration is instrumentation — determinism class
/// `timing` — and must never feed back into deterministic output. The
/// trace chunk, when requested, is deterministic too: every line is
/// stamped with the cell's submission index and virtual time only, so
/// chunks concatenate into byte-identical files at any parallelism.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The simulation's result.
    pub result: RunResult,
    /// Wall-clock execution time on the worker that ran the cell
    /// (includes time-sharing wait when workers oversubscribe cores,
    /// and excludes queueing/transfer time in distributed backends).
    pub wall: std::time::Duration,
    /// The cell's trace-v1 chunk, when the batch ran with tracing.
    pub trace: Option<TraceChunk>,
}

/// A batch executor backend.
///
/// The contract every implementation must honor:
///
/// 1. **Submission order.** `run_cells(cells)` returns exactly
///    `cells.len()` outcomes with `outcomes[i]` belonging to
///    `cells[i]`, regardless of completion order.
/// 2. **Purity.** Each cell's result depends only on its scenario, so
///    *where* and *when* a cell runs — and whether it was retried —
///    cannot change any result byte.
/// 3. **Fail loudly.** A backend that cannot produce every outcome
///    (worker fleet degraded, cell permanently failing) returns a
///    typed [`HarnessError`] instead of a partial vector.
pub trait Executor: Send + Sync {
    /// Run every cell; outcomes in submission order. When `trace` is
    /// `Some`, each outcome carries the cell's flight-recorder chunk
    /// (lines stamped with the cell's submission index), filtered and
    /// bounded per the spec. Tracing must never change result bytes.
    fn run_cells(
        &self,
        cells: &[Cell],
        trace: Option<&TraceSpec>,
    ) -> Result<Vec<CellOutcome>, HarnessError>;

    /// How many cells this backend works on concurrently (worker
    /// threads in-process, worker processes distributed). Reported in
    /// timing output; never affects result bytes.
    fn concurrency(&self) -> usize;
}

/// The in-process reference executor: a self-scheduling worker pool
/// over `std::thread` + channels.
///
/// Workers pull the next unclaimed index from a shared atomic cursor
/// (work-stealing degenerates to this when every task lives in one
/// shared queue), ship `(index, value)` pairs back over an mpsc
/// channel, and the collector reassembles them in submission order.
#[derive(Debug, Clone, Copy)]
pub struct ThreadExecutor {
    jobs: usize,
}

impl ThreadExecutor {
    /// An executor with `jobs` worker threads (0 is clamped to 1; the
    /// CLI rejects `--jobs 0` at parse time, so the clamp only guards
    /// library callers).
    pub fn new(jobs: usize) -> ThreadExecutor {
        ThreadExecutor { jobs: jobs.max(1) }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The underlying primitive: evaluate `f(0..n)` across the pool and
    /// return the outputs in index order. `f` must be a pure function
    /// of its index for the order guarantee to be meaningful.
    ///
    /// This is the **only** copy of the channel/ordering plumbing; the
    /// trait method, `Harness::run`, and `Harness::run_timed` are all
    /// thin wrappers over it.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // The collector outlives the workers; a send can
                    // only fail if it panicked, in which case the scope
                    // is already unwinding.
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, v) in rx {
                debug_assert!(slots[i].is_none(), "index {i} delivered twice");
                slots[i] = Some(v);
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("cell {i} produced no result")))
            .collect()
    }
}

impl Executor for ThreadExecutor {
    /// Run every cell on the thread pool. The only failure mode is a
    /// malformed trace filter — the in-process backend has no workers
    /// to lose.
    fn run_cells(
        &self,
        cells: &[Cell],
        trace: Option<&TraceSpec>,
    ) -> Result<Vec<CellOutcome>, HarnessError> {
        let filter = match trace {
            None => None,
            Some(spec) => Some((
                TraceFilter::parse(&spec.filter)
                    .map_err(|detail| HarnessError::BadTraceFilter { detail })?,
                spec.capacity,
            )),
        };
        Ok(self.run_indexed(cells.len(), |i| {
            let start = std::time::Instant::now();
            match &filter {
                None => CellOutcome {
                    result: irn_core::run(cells[i].config().clone()),
                    wall: start.elapsed(),
                    trace: None,
                },
                Some((f, capacity)) => {
                    let (result, chunk) =
                        irn_telemetry::capture(i as u64, f.clone(), *capacity, || {
                            irn_core::run(cells[i].config().clone())
                        });
                    CellOutcome {
                        result,
                        wall: start.elapsed(),
                        trace: Some(chunk),
                    }
                }
            }
        }))
    }

    fn concurrency(&self) -> usize {
        self.jobs
    }
}

/// The executor handle the workspace passes around: a cheap clonable
/// wrapper over a shared [`Executor`] backend.
///
/// `Harness::new(jobs)` keeps its historical meaning (an in-process
/// [`ThreadExecutor`]); [`Harness::with_executor`] plugs in any other
/// backend — notably the [`crate::WorkerPool`] coordinator — without
/// changing a line above the seam.
#[derive(Clone)]
pub struct Harness {
    exec: Arc<dyn Executor>,
}

impl Harness {
    /// An in-process executor with `jobs` worker threads (0 is clamped
    /// to 1).
    pub fn new(jobs: usize) -> Harness {
        Harness::with_executor(Arc::new(ThreadExecutor::new(jobs)))
    }

    /// A serial in-process executor (`jobs = 1`).
    pub fn serial() -> Harness {
        Harness::new(1)
    }

    /// One in-process worker per available core.
    pub fn auto() -> Harness {
        Harness::new(std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// A harness over an arbitrary executor backend.
    pub fn with_executor(exec: Arc<dyn Executor>) -> Harness {
        Harness { exec }
    }

    /// The backend's concurrency (thread count in-process, worker count
    /// distributed). Kept under the historical name — it is what the
    /// CLI reports as `jobs=` and records in timing JSON.
    pub fn jobs(&self) -> usize {
        self.exec.concurrency()
    }

    /// Run every cell and return results in submission order:
    /// `results[i]` belongs to `cells[i]`, at any parallelism.
    /// Panics if the backend fails; use [`Harness::try_run_timed`] for
    /// the typed-error path (distributed backends can degrade).
    pub fn run(&self, cells: &[Cell]) -> Vec<RunResult> {
        self.run_timed(cells).into_iter().map(|(r, _)| r).collect()
    }

    /// Like [`Harness::run`], additionally returning each cell's
    /// wall-clock execution time on its worker. The results are
    /// bit-identical to `run`'s (timing is observed, never fed back).
    /// With more jobs than cores the workers time-share, so a cell's
    /// duration includes preemption wait — consumers comparing
    /// throughput across runs should hold `jobs` (recorded in the
    /// timing JSON) constant. Panics if the backend fails.
    pub fn run_timed(&self, cells: &[Cell]) -> Vec<(RunResult, std::time::Duration)> {
        self.try_run_timed(cells)
            .unwrap_or_else(|e| panic!("executor failed: {e}"))
    }

    /// The fallible primitive behind `run`/`run_timed`: every outcome
    /// in submission order, or the backend's typed error (worker fleet
    /// degraded, cell permanently failing). The in-process backend
    /// never errors.
    pub fn try_run_timed(
        &self,
        cells: &[Cell],
    ) -> Result<Vec<(RunResult, std::time::Duration)>, HarnessError> {
        Ok(self
            .exec
            .run_cells(cells, None)?
            .into_iter()
            .map(|o| (o.result, o.wall))
            .collect())
    }

    /// Like [`Harness::try_run_timed`], with the flight recorder on:
    /// every outcome carries its trace-v1 chunk. Results are
    /// bit-identical to the untraced run at any parallelism — tracing
    /// is observation only.
    pub fn try_run_traced(
        &self,
        cells: &[Cell],
        trace: &TraceSpec,
    ) -> Result<Vec<CellOutcome>, HarnessError> {
        self.exec.run_cells(cells, Some(trace))
    }

    /// Evaluate `f(0..n)` across an in-process thread pool sized like
    /// this harness, returning outputs in index order.
    ///
    /// This is a *local compute* primitive (used for generic
    /// parallelism outside the cell abstraction); it always runs on
    /// threads in this process, even when the cell backend is a
    /// distributed pool.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        ThreadExecutor::new(self.jobs()).run_indexed(n, f)
    }
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("concurrency", &self.jobs())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Skewed work so completion order differs from submission order.
        let h = Harness::new(4);
        let out = h.run_indexed(64, |i| {
            let spins = if i % 7 == 0 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        assert_eq!(
            Harness::serial().run_indexed(33, f),
            Harness::new(8).run_indexed(33, f)
        );
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Harness::new(0).jobs(), 1);
        assert_eq!(Harness::new(0).run_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<usize> = Harness::new(4).run_indexed(0, |i| i);
        assert!(out.is_empty());
        assert!(Harness::new(4).run(&[]).is_empty());
    }

    /// A custom backend plugs in through the trait seam: `Harness::run`
    /// observes its outcomes (here: a stub that fails), proving the
    /// forwarding shims really delegate.
    #[test]
    fn custom_executor_errors_surface_through_try_run() {
        struct Failing;
        impl Executor for Failing {
            fn run_cells(
                &self,
                _: &[Cell],
                _: Option<&TraceSpec>,
            ) -> Result<Vec<CellOutcome>, HarnessError> {
                Err(HarnessError::QuorumLost {
                    live: 0,
                    quorum: 1,
                    completed: 0,
                    total: 0,
                })
            }
            fn concurrency(&self) -> usize {
                3
            }
        }
        let h = Harness::with_executor(Arc::new(Failing));
        assert_eq!(h.jobs(), 3);
        let err = h.try_run_timed(&[]).unwrap_err();
        assert!(matches!(err, HarnessError::QuorumLost { .. }));
    }
}
