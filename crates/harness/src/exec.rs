//! The parallel executor: a self-scheduling worker pool over
//! `std::thread` + channels.
//!
//! Cells are independent and the engine is a pure function of its
//! config, so scheduling cannot change any result — only wall-clock
//! time. Workers pull the next unclaimed index from a shared atomic
//! cursor (work-stealing degenerates to this when every task lives in
//! one shared queue), ship `(index, result)` pairs back over an mpsc
//! channel, and the collector reassembles them **in submission order**.
//! `jobs = 1` bypasses the pool entirely and runs inline, so serial
//! output is the definitional baseline the parallel path must match.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use irn_core::RunResult;

use crate::cell::Cell;

/// A parallel experiment executor with a fixed job count.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    jobs: usize,
}

impl Harness {
    /// An executor with `jobs` workers (0 is clamped to 1).
    pub fn new(jobs: usize) -> Harness {
        Harness { jobs: jobs.max(1) }
    }

    /// A serial executor (`jobs = 1`).
    pub fn serial() -> Harness {
        Harness::new(1)
    }

    /// One worker per available core.
    pub fn auto() -> Harness {
        Harness::new(std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run every cell and return results in submission order:
    /// `results[i]` belongs to `cells[i]`, at any job count.
    pub fn run(&self, cells: &[Cell]) -> Vec<RunResult> {
        self.run_indexed(cells.len(), |i| irn_core::run(cells[i].config().clone()))
    }

    /// Like [`Harness::run`], additionally measuring each cell's
    /// **wall-clock** execution time on its worker. The results are
    /// bit-identical to `run`'s (timing is observed, never fed back).
    /// With more jobs than cores the workers time-share, so a cell's
    /// duration includes preemption wait — consumers comparing
    /// throughput across runs should hold `jobs` (recorded in the
    /// timing JSON) constant. The durations are instrumentation for
    /// events/sec reporting and must not enter deterministic output.
    pub fn run_timed(&self, cells: &[Cell]) -> Vec<(RunResult, std::time::Duration)> {
        self.run_indexed(cells.len(), |i| {
            let start = std::time::Instant::now();
            let result = irn_core::run(cells[i].config().clone());
            (result, start.elapsed())
        })
    }

    /// The underlying primitive: evaluate `f(0..n)` across the pool and
    /// return the outputs in index order. `f` must be a pure function
    /// of its index for the order guarantee to be meaningful.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // The collector outlives the workers; a send can
                    // only fail if it panicked, in which case the scope
                    // is already unwinding.
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, v) in rx {
                debug_assert!(slots[i].is_none(), "index {i} delivered twice");
                slots[i] = Some(v);
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("cell {i} produced no result")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Skewed work so completion order differs from submission order.
        let h = Harness::new(4);
        let out = h.run_indexed(64, |i| {
            let spins = if i % 7 == 0 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        assert_eq!(
            Harness::serial().run_indexed(33, f),
            Harness::new(8).run_indexed(33, f)
        );
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Harness::new(0).jobs(), 1);
        assert_eq!(Harness::new(0).run_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<usize> = Harness::new(4).run_indexed(0, |i| i);
        assert!(out.is_empty());
    }
}
