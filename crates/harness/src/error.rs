//! The typed error surface of the orchestration layer.
//!
//! Everything a caller can mishandle — and everything a degraded worker
//! fleet can do — funnels into one [`HarnessError`] enum, so the CLI
//! can map every failure onto its documented exit(2) path with a
//! message that says what actually happened (which cell, which worker,
//! how much of the batch completed) instead of a panic backtrace.

/// An orchestration failure: a bad query against a finished result set,
/// or a distributed batch that could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// A seed was queried on a [`crate::ReplicateResult`] that never ran
    /// it (see [`crate::ReplicateResult::result_for`]).
    UnknownSeed {
        /// The replicated cell's label.
        label: String,
        /// The seed that was asked for.
        seed: u64,
        /// The seeds that actually ran (canonical order).
        known: Vec<u64>,
    },
    /// A worker process could not be spawned or a worker address could
    /// not be connected to.
    WorkerUnavailable {
        /// The worker's display name (`spawn[i]`/`connect addr`).
        worker: String,
        /// The underlying I/O error text.
        detail: String,
    },
    /// One cell failed on every attempt it was allowed (worker deaths,
    /// timeouts, or worker-reported errors), so the batch cannot be
    /// assembled.
    CellFailed {
        /// Submission index of the cell in the batch.
        index: usize,
        /// The cell's display label.
        label: String,
        /// Attempts consumed (== the pool's `max_attempts`).
        attempts: usize,
        /// The last failure's description.
        detail: String,
        /// Cells that did complete before the batch was abandoned.
        completed: usize,
        /// Total cells in the batch.
        total: usize,
    },
    /// A trace filter expression could not be parsed (see
    /// `irn_telemetry::TraceFilter::parse` for the grammar).
    BadTraceFilter {
        /// What was wrong with the expression.
        detail: String,
    },
    /// The fleet progress JSON file could not be created.
    ProgressUnavailable {
        /// The requested path.
        path: String,
        /// The underlying I/O error text.
        detail: String,
    },
    /// Live workers dropped below the pool's quorum while work
    /// remained, so the batch was abandoned.
    QuorumLost {
        /// Workers still alive when the batch was abandoned.
        live: usize,
        /// The configured minimum.
        quorum: usize,
        /// Cells that completed before the fleet degraded.
        completed: usize,
        /// Total cells in the batch.
        total: usize,
    },
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::UnknownSeed { label, seed, known } => write!(
                f,
                "replicate '{label}' never ran seed {seed} (known seeds: {known:?})"
            ),
            HarnessError::WorkerUnavailable { worker, detail } => {
                write!(f, "worker {worker} unavailable: {detail}")
            }
            HarnessError::CellFailed {
                index,
                label,
                attempts,
                detail,
                completed,
                total,
            } => write!(
                f,
                "cell #{index} '{label}' failed on all {attempts} attempt(s): {detail} \
                 [{completed}/{total} cells completed]"
            ),
            HarnessError::BadTraceFilter { detail } => {
                write!(f, "bad trace filter: {detail}")
            }
            HarnessError::ProgressUnavailable { path, detail } => {
                write!(f, "cannot write progress JSON to {path}: {detail}")
            }
            HarnessError::QuorumLost {
                live,
                quorum,
                completed,
                total,
            } => write!(
                f,
                "worker fleet degraded below quorum ({live} live < {quorum} required) \
                 with work remaining [{completed}/{total} cells completed]"
            ),
        }
    }
}

impl std::error::Error for HarnessError {}

impl HarnessError {
    /// `(completed, total)` cells of the abandoned batch, when this
    /// error describes one — the partial-results report the CLI prints
    /// before its exit(2).
    pub fn partial_progress(&self) -> Option<(usize, usize)> {
        match self {
            HarnessError::CellFailed {
                completed, total, ..
            }
            | HarnessError::QuorumLost {
                completed, total, ..
            } => Some((*completed, *total)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_failure_site() {
        let e = HarnessError::UnknownSeed {
            label: "incast".into(),
            seed: 4,
            known: vec![1, 2],
        };
        let msg = e.to_string();
        assert!(msg.contains("incast") && msg.contains("seed 4"), "{msg}");
        assert_eq!(e.partial_progress(), None);

        let e = HarnessError::QuorumLost {
            live: 0,
            quorum: 1,
            completed: 7,
            total: 36,
        };
        assert!(e.to_string().contains("7/36"), "{e}");
        assert_eq!(e.partial_progress(), Some((7, 36)));
    }
}
