//! # irn-harness — parallel, sweep-oriented experiment orchestration
//!
//! The paper's evaluation (§4) is a large matrix of *independent*
//! simulation cells — transports × {PFC on/off} × CC schemes ×
//! workloads, with incast numbers averaged over many repetitions. The
//! engine is a pure function of its [`irn_core::ExperimentConfig`],
//! which makes that matrix embarrassingly parallel. This crate owns the
//! orchestration layer that exploits it:
//!
//! - [`Cell`] — one labeled experiment configuration (one bar of a
//!   figure, one line of a table).
//! - [`SweepGrid`] — a builder for cartesian parameter sweeps
//!   (transport/PFC variants × CC schemes × offered loads × seeds) that
//!   expands into an ordered batch of cells.
//! - [`Executor`] — the pluggable backend seam: run a batch of cells,
//!   return one outcome per cell **in submission order**. Two backends
//!   ship: the in-process [`ThreadExecutor`] (`std::thread` + channels,
//!   no external deps) and the multi-process [`WorkerPool`] coordinator,
//!   which shards a batch across spawned or remote `work-v1` workers
//!   with per-cell timeouts, bounded retry/reassignment, and quorum
//!   tracking. Because cells are pure functions of their scenarios,
//!   downstream reports render byte-identically at any job count on
//!   any backend.
//! - [`Harness`] — the cheap clonable handle over an executor that the
//!   rest of the workspace passes around.
//! - [`Replicate`] — fans one cell out over N seeds and aggregates
//!   mean / std-dev / 95% CI, independent of seed order.
//! - [`ReplicateSet`] — flattens many replicates into **one** batch
//!   (no per-replicate barrier) and demuxes the flat result vector back
//!   per replicate; the building block for multi-seed figures and for
//!   splicing several artifacts' cells into one global batch.
//!
//! ```
//! use irn_core::ExperimentConfig;
//! use irn_harness::{Cell, Harness};
//!
//! let base = ExperimentConfig::quick(60);
//! let cells = vec![
//!     Cell::new("irn", base.clone().with_pfc(false)),
//!     Cell::new("irn+pfc", base.with_pfc(true)),
//! ];
//! let results = Harness::new(2).run(&cells);
//! assert_eq!(results.len(), 2); // results[i] belongs to cells[i]
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cell;
pub mod error;
pub mod exec;
pub mod pool;
pub mod replicate;
pub mod stats;
pub mod sweep;
pub mod wire;
pub mod worker;

pub use cell::Cell;
pub use error::HarnessError;
pub use exec::{CellOutcome, Executor, Harness, ThreadExecutor};
pub use pool::{PoolConfig, WorkerPool, WorkerSpec, WorkerStats};
pub use replicate::{Replicate, ReplicateResult, ReplicateSet};
pub use stats::Stats;
pub use sweep::{SweepGrid, Variant};
pub use worker::{ServeSummary, WorkerOptions};
