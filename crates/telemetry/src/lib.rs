//! # irn-telemetry — the structured trace sink ("flight recorder")
//!
//! A bounded ring buffer of `trace-v1` NDJSON event lines, fed by cheap
//! [`trace!`] call sites across the simulation vertical (packet
//! tx/rx/drop, PFC pause/resume, ECN marks, NACKs, retransmissions,
//! timer lifecycle, cwnd changes — see `docs/TRACING.md` for the event
//! reference).
//!
//! The design constraints, in priority order:
//!
//! 1. **Zero cost when off.** Every call site is guarded by
//!    [`enabled`], a single thread-local load. The `noop` cargo feature
//!    compiles it to a constant `false`, deleting the sites outright;
//!    the CI bench gate holds the default (runtime-checked) build to
//!    <2% of the no-op build's events/sec.
//! 2. **Determinism.** Events carry *virtual* time and simulation
//!    identifiers only — never wall clock, never addresses — so a
//!    deterministic run produces byte-identical trace lines on any
//!    thread, process, or machine. The sink is thread-local and scoped
//!    to one cell ([`capture`]), which is what lets a multi-worker
//!    fleet reassemble per-cell traces in submission order and emit a
//!    file byte-identical to a serial in-process run.
//! 3. **No dependencies.** Lines are flat JSON objects of numbers,
//!    booleans, and static strings, formatted locally; every crate in
//!    the workspace (including `irn-sim` at the very bottom) can depend
//!    on this one.
//!
//! The buffer is a flight recorder: when an unfiltered run exceeds the
//! capacity, the *oldest* lines are discarded (the interesting part of
//! a pathological run is usually its tail) and the chunk ends with a
//! `trace.truncated` marker carrying the discarded count.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// The schema identifier of a trace file header line.
pub const TRACE_SCHEMA: &str = "trace-v1";

/// Default flight-recorder capacity, in events per cell.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static SINK: RefCell<Option<Sink>> = const { RefCell::new(None) };
}

/// True when the current thread is inside a [`capture`] scope.
///
/// This is the *only* check on the hot path: one thread-local load.
/// With the `noop` feature it is a constant `false` and every guarded
/// call site folds away.
#[inline(always)]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    ACTIVE.with(|a| a.get())
}

/// One typed field value in a trace event.
///
/// Kept to the shapes a deterministic simulator produces: integers,
/// floats with shortest-round-trip formatting (Rust's `Display` for
/// `f64`), booleans, and `'static` labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (ids, sequence numbers, byte counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (e.g. a fractional cwnd); formatted shortest-round-trip.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static label (packet kinds, drop causes).
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<u16> for FieldValue {
    fn from(v: u16) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => {
                if v.is_finite() {
                    // Rust's Display for f64 is shortest-round-trip,
                    // the same property the vendored serde relies on.
                    let _ = write!(out, "{v}");
                    if v.fract() == 0.0 && v.abs() < 1e15 && !out.ends_with('0') {
                        // `1` would read back as an integer; keep floats
                        // visibly floats, matching serde's `1.0`.
                        let _ = write!(out, ".0");
                    }
                } else {
                    let _ = write!(out, "null");
                }
            }
            FieldValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::Str(v) => write_json_str(out, v),
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------

/// A parsed `--trace-filter` expression.
///
/// Grammar: comma-separated `key=value` clauses over the keys `kind`,
/// `flow`, and `host`. Clauses with the *same* key OR together; groups
/// of different keys AND together. A `kind` value ending in `*` is a
/// prefix match. The empty string matches everything.
///
/// `kind=pkt.*,kind=pfc.pause,flow=3` ⇒ (kind starts with `pkt.` OR
/// kind is `pfc.pause`) AND (flow is 3). `host` matches an event's
/// `host`, `src`, or `dst` field.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceFilter {
    kinds: Vec<String>,
    flows: Vec<u64>,
    hosts: Vec<u64>,
}

impl TraceFilter {
    /// The match-everything filter.
    pub fn all() -> TraceFilter {
        TraceFilter::default()
    }

    /// Parse a filter expression (see the type docs for the grammar).
    pub fn parse(expr: &str) -> Result<TraceFilter, String> {
        let mut f = TraceFilter::default();
        for clause in expr.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let Some((key, value)) = clause.split_once('=') else {
                return Err(format!(
                    "filter clause '{clause}' is not key=value (keys: kind, flow, host)"
                ));
            };
            match key.trim() {
                "kind" => f.kinds.push(value.trim().to_string()),
                "flow" => f.flows.push(parse_id("flow", value)?),
                "host" => f.hosts.push(parse_id("host", value)?),
                other => {
                    return Err(format!(
                        "unknown filter key '{other}' (keys: kind, flow, host)"
                    ))
                }
            }
        }
        Ok(f)
    }

    /// True when the filter has no clauses (matches everything).
    pub fn is_all(&self) -> bool {
        self.kinds.is_empty() && self.flows.is_empty() && self.hosts.is_empty()
    }

    fn kind_matches(&self, kind: &str) -> bool {
        self.kinds.is_empty()
            || self.kinds.iter().any(|k| match k.strip_suffix('*') {
                Some(prefix) => kind.starts_with(prefix),
                None => k == kind,
            })
    }

    fn matches(&self, kind: &str, fields: &[(&'static str, FieldValue)]) -> bool {
        if !self.kind_matches(kind) {
            return false;
        }
        let field_in = |names: &[&str], wanted: &[u64]| {
            wanted.is_empty()
                || fields.iter().any(|(n, v)| {
                    names.contains(n) && v.as_u64().is_some_and(|v| wanted.contains(&v))
                })
        };
        field_in(&["flow"], &self.flows) && field_in(&["host", "src", "dst"], &self.hosts)
    }
}

fn parse_id(key: &str, value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("filter '{key}' needs a numeric id, got '{value}'"))
}

// ---------------------------------------------------------------------
// Capture scope and sink
// ---------------------------------------------------------------------

/// What a coordinator asks a worker (or the in-process executor) to
/// capture: the raw filter expression plus the per-cell buffer
/// capacity. The filter travels unparsed so it round-trips the wire
/// protocol verbatim; both executors validate it before running.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Raw `--trace-filter` expression (empty: capture everything).
    pub filter: String,
    /// Flight-recorder capacity in events per cell.
    pub capacity: usize,
}

impl Default for TraceSpec {
    fn default() -> TraceSpec {
        TraceSpec {
            filter: String::new(),
            capacity: DEFAULT_CAPACITY,
        }
    }
}

/// One cell's captured trace: `trace-v1` event lines in emission order
/// plus the count of lines the flight recorder had to discard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceChunk {
    /// NDJSON event lines (no trailing newlines).
    pub lines: Vec<String>,
    /// Events discarded when the buffer wrapped (oldest first).
    pub dropped: u64,
}

struct Sink {
    cell: u64,
    filter: TraceFilter,
    capacity: usize,
    lines: VecDeque<String>,
    dropped: u64,
    last_t: u64,
}

/// Run `f` with tracing enabled on this thread, recording events into a
/// fresh flight recorder tagged with `cell` (the cell's submission
/// index — it leads every line, so per-cell chunks concatenate into a
/// batch-wide file without rewriting).
///
/// Nested captures are a logic error (cells are the unit of capture)
/// and panic. The scope is panic-safe: tracing is disabled again even
/// if `f` unwinds.
pub fn capture<R>(
    cell: u64,
    filter: TraceFilter,
    capacity: usize,
    f: impl FnOnce() -> R,
) -> (R, TraceChunk) {
    assert!(!enabled(), "nested trace capture (cells are the unit)");
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            ACTIVE.with(|a| a.set(false));
            SINK.with(|s| s.borrow_mut().take());
        }
    }
    SINK.with(|s| {
        *s.borrow_mut() = Some(Sink {
            cell,
            filter,
            capacity: capacity.max(1),
            lines: VecDeque::new(),
            dropped: 0,
            last_t: 0,
        })
    });
    let guard = Guard;
    ACTIVE.with(|a| a.set(true));
    let out = f();
    ACTIVE.with(|a| a.set(false));
    let sink = SINK.with(|s| s.borrow_mut().take()).expect("sink in scope");
    drop(guard);
    let mut chunk = TraceChunk {
        lines: sink.lines.into(),
        dropped: sink.dropped,
    };
    if chunk.dropped > 0 {
        chunk.lines.push(format!(
            "{{\"cell\":{},\"t\":{},\"kind\":\"trace.truncated\",\"dropped\":{}}}",
            sink.cell, sink.last_t, chunk.dropped
        ));
    }
    (out, chunk)
}

/// Record one event. Callers go through the [`trace!`] macro, which
/// guards this behind [`enabled`]; calling it outside a capture scope
/// is a silent no-op (the macro's guard makes that unreachable anyway).
pub fn record(kind: &'static str, t: u64, fields: &[(&'static str, FieldValue)]) {
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        let Some(sink) = s.as_mut() else {
            return;
        };
        if !sink.filter.matches(kind, fields) {
            return;
        }
        sink.last_t = t;
        let mut line = String::with_capacity(64);
        let _ = write!(line, "{{\"cell\":{},\"t\":{t},\"kind\":", sink.cell);
        write_json_str(&mut line, kind);
        for (name, value) in fields {
            let _ = write!(line, ",\"{name}\":");
            value.write_json(&mut line);
        }
        line.push('}');
        if sink.lines.len() >= sink.capacity {
            sink.lines.pop_front();
            sink.dropped += 1;
        }
        sink.lines.push_back(line);
    });
}

/// Record a structured trace event, compiled/checked away when tracing
/// is off.
///
/// ```
/// # let now_ns = 42u64;
/// irn_telemetry::trace!("pkt.tx", t = now_ns, flow = 3u32, src = 0u32, retx = false);
/// ```
///
/// `t` (virtual-time nanoseconds) is mandatory and leads; the remaining
/// `key = value` fields become the event's JSON fields in order. Values
/// must convert into [`FieldValue`] — integers, floats, booleans, or
/// `'static` strings. **Never** pass wall-clock or host-environment
/// values: trace bytes must be a pure function of the simulated cell.
#[macro_export]
macro_rules! trace {
    ($kind:expr, t = $t:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::record(
                $kind,
                $t,
                &[$((stringify!($key), $crate::FieldValue::from($val))),*],
            );
        }
    };
}

/// Render the `trace-v1` header line for a trace file: schema tag, the
/// source label (artifact list or scenario slugs), the filter
/// expression, and the batch's cell count. Deterministic — every input
/// is part of the run's identity.
pub fn header_line(source: &str, filter: &str, cells: usize) -> String {
    let mut line = String::with_capacity(96);
    let _ = write!(line, "{{\"schema\":");
    write_json_str(&mut line, TRACE_SCHEMA);
    let _ = write!(line, ",\"source\":");
    write_json_str(&mut line, source);
    let _ = write!(line, ",\"filter\":");
    write_json_str(&mut line, filter);
    let _ = write!(line, ",\"cells\":{cells}}}");
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_records_nothing() {
        assert!(!enabled());
        record("pkt.tx", 5, &[("flow", FieldValue::U64(1))]);
        // No sink: nothing to observe, and nothing panicked.
    }

    #[test]
    fn capture_scopes_enablement_and_formats_lines() {
        let ((), chunk) = capture(7, TraceFilter::all(), 16, || {
            assert!(cfg!(feature = "noop") || enabled());
            trace!("pkt.tx", t = 100, flow = 3u32, retx = false, kind2 = "data");
            trace!("cc.cwnd", t = 200, flow = 3u32, cwnd = 1.5f64);
        });
        assert!(!enabled());
        if cfg!(feature = "noop") {
            assert!(chunk.lines.is_empty());
            return;
        }
        assert_eq!(
            chunk.lines,
            vec![
                r#"{"cell":7,"t":100,"kind":"pkt.tx","flow":3,"retx":false,"kind2":"data"}"#,
                r#"{"cell":7,"t":200,"kind":"cc.cwnd","flow":3,"cwnd":1.5}"#,
            ]
        );
        assert_eq!(chunk.dropped, 0);
    }

    #[test]
    fn whole_floats_stay_floats() {
        let mut s = String::new();
        FieldValue::F64(2.0).write_json(&mut s);
        assert_eq!(s, "2.0");
        let mut s = String::new();
        FieldValue::F64(0.5).write_json(&mut s);
        assert_eq!(s, "0.5");
    }

    #[test]
    fn ring_buffer_drops_oldest_and_marks_truncation() {
        let ((), chunk) = capture(0, TraceFilter::all(), 2, || {
            for i in 0..5u64 {
                trace!("e", t = i);
            }
        });
        if cfg!(feature = "noop") {
            return;
        }
        assert_eq!(chunk.dropped, 3);
        assert_eq!(chunk.lines.len(), 3, "2 kept + truncation marker");
        assert!(chunk.lines[0].contains("\"t\":3"));
        assert!(chunk.lines[1].contains("\"t\":4"));
        assert!(chunk.lines[2].contains("trace.truncated"));
        assert!(chunk.lines[2].contains("\"dropped\":3"));
    }

    #[test]
    fn filter_grammar_parses_and_matches() {
        let f = TraceFilter::parse("kind=pkt.*, kind=pfc.pause, flow=3, host=1").unwrap();
        assert!(f.matches(
            "pkt.tx",
            &[("flow", FieldValue::U64(3)), ("src", FieldValue::U64(1))]
        ));
        assert!(f.matches(
            "pfc.pause",
            &[("flow", FieldValue::U64(3)), ("host", FieldValue::U64(1))]
        ));
        // Wrong kind.
        assert!(!f.matches("timer.arm", &[("flow", FieldValue::U64(3))]));
        // Right kind, wrong flow.
        assert!(!f.matches(
            "pkt.tx",
            &[("flow", FieldValue::U64(4)), ("dst", FieldValue::U64(1))]
        ));
        // Right kind and flow, no matching host field.
        assert!(!f.matches("pkt.tx", &[("flow", FieldValue::U64(3))]));

        assert!(TraceFilter::parse("").unwrap().is_all());
        assert!(TraceFilter::parse("flow").is_err());
        assert!(TraceFilter::parse("color=red").is_err());
        assert!(TraceFilter::parse("flow=abc").is_err());
    }

    #[test]
    fn capture_applies_the_filter() {
        let f = TraceFilter::parse("kind=keep").unwrap();
        let ((), chunk) = capture(1, f, 16, || {
            trace!("keep", t = 1);
            trace!("discard", t = 2);
            trace!("keep", t = 3);
        });
        if cfg!(feature = "noop") {
            return;
        }
        assert_eq!(chunk.lines.len(), 2);
        assert!(chunk.lines.iter().all(|l| l.contains("\"kind\":\"keep\"")));
    }

    #[test]
    fn header_line_is_valid_json_shape() {
        let h = header_line("fig1", "kind=pkt.*", 10);
        assert_eq!(
            h,
            r#"{"schema":"trace-v1","source":"fig1","filter":"kind=pkt.*","cells":10}"#
        );
    }

    #[test]
    fn strings_escape_cleanly() {
        let mut s = String::new();
        write_json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }
}
