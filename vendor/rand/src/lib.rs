//! A hermetic, API-compatible subset of the `rand` crate.
//!
//! The workspace builds with no network access, so the handful of `rand`
//! APIs the simulator uses are vendored here: [`rngs::SmallRng`] (the
//! xoshiro256++ generator, seeded through SplitMix64 exactly like
//! upstream `rand` 0.9 on 64-bit targets), and the [`Rng`], [`RngCore`]
//! and [`SeedableRng`] traits with the `random`/`random_range` methods.
//!
//! Determinism is the only property the simulator relies on: a given
//! seed must yield the same stream on every platform, which the pure
//! integer arithmetic below guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level generator interface: raw integer output.
pub trait RngCore {
    /// Next uniform `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types samplable uniformly from a generator (the `StandardUniform`
/// distribution of upstream `rand`).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits, as upstream does.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Widening-multiply bounded sampling (Lemire); the slight
                // modulo bias over a 128-bit product is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the standard-uniform distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (identical
    /// to upstream `rand`'s `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The small fast generator: xoshiro256++, matching upstream
    /// `rand::rngs::SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(123);
        let mut b = SmallRng::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_answer_locks_the_stream() {
        // Golden values: changing the seeding or core permutation would
        // silently re-randomize every experiment, so pin the stream.
        let mut r = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180
            ]
        );
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.random_range(5u64..17);
            assert!((5..17).contains(&v));
            let u = r.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
