//! A hermetic, API-compatible subset of the `serde` ecosystem.
//!
//! Upstream `serde` separates the data model (the `Serialize` trait)
//! from data formats (`serde_json` et al.). This vendored subset fuses
//! the two into the one format the workspace needs: [`Serialize`]
//! converts a value into the JSON data model ([`json::Value`]), and
//! [`json`] renders/parses that model as text. The derive macro in
//! `serde_derive` generates real field-walking impls, so `#[derive(Serialize)]`
//! annotations keep their upstream shape.
//!
//! Swapping back to registry crates when online: replace the
//! `[workspace.dependencies]` entry with real `serde` (+ `serde_json`),
//! and change `serde::json::to_string(&v)` call sites to
//! `serde_json::to_string(&v)` — the derive annotations need no edits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The derive emits `impl ::serde::Serialize`; make that path resolve
// inside this crate's own tests too.
extern crate self as serde;

pub mod json;

/// Types that can be converted into the JSON data model.
///
/// Derivable for structs and enums via `#[derive(Serialize)]`; manual
/// impls are the escape hatch for types whose wire form differs from
/// their field layout (e.g. nanosecond newtypes).
pub trait Serialize {
    /// Convert `self` into a [`json::Value`] tree.
    fn to_json(&self) -> json::Value;
}

pub use serde_derive::Serialize;

// ---------------------------------------------------------------------
// Blanket impls for std types.
// ---------------------------------------------------------------------

use json::{Number, Value};

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            // Canonical form matches the parser (which yields U64 for
            // any non-negative literal): without this, a serialized
            // `i64` of 5 would compare unequal to its own parse.
            fn to_json(&self) -> Value {
                if *self >= 0 {
                    Value::Number(Number::U64(*self as u64))
                } else {
                    Value::Number(Number::I64(*self as i64))
                }
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::json::{Number, Value};
    use super::Serialize;

    #[derive(Serialize)]
    struct Named {
        a: u32,
        b: String,
    }

    #[derive(Serialize)]
    struct Newtype(u8);

    #[derive(Serialize)]
    struct Pair(u8, u8);

    #[derive(Serialize)]
    enum Kind {
        A,
        B(u32),
        C { x: u8 },
    }

    #[test]
    fn derive_walks_named_fields() {
        let v = Named {
            a: 7,
            b: "hi".into(),
        }
        .to_json();
        assert_eq!(
            v,
            Value::Object(vec![
                ("a".into(), Value::Number(Number::U64(7))),
                ("b".into(), Value::String("hi".into())),
            ])
        );
    }

    #[test]
    fn derive_handles_tuples_and_enums() {
        assert_eq!(Newtype(3).to_json(), Value::Number(Number::U64(3)));
        assert_eq!(
            Pair(1, 2).to_json(),
            Value::Array(vec![
                Value::Number(Number::U64(1)),
                Value::Number(Number::U64(2))
            ])
        );
        assert_eq!(Kind::A.to_json(), Value::String("A".into()));
        assert_eq!(
            Kind::B(9).to_json(),
            Value::Object(vec![("B".into(), Value::Number(Number::U64(9)))])
        );
        assert_eq!(
            Kind::C { x: 1 }.to_json(),
            Value::Object(vec![(
                "C".into(),
                Value::Object(vec![("x".into(), Value::Number(Number::U64(1)))])
            )])
        );
    }

    #[test]
    fn signed_integers_round_trip_by_value() {
        // Non-negative signed values canonicalize to U64, matching the
        // parser, so serialize → parse compares equal at value level.
        for v in [-3i64, 0, 5, i64::MAX, i64::MIN] {
            let val = v.to_json();
            let text = crate::json::to_string(&val);
            assert_eq!(crate::json::from_str(&text).unwrap(), val, "for {v}");
        }
    }

    #[test]
    fn std_impls_compose() {
        let v = vec![(String::from("k"), 1.5f64)].to_json();
        assert_eq!(
            v,
            Value::Array(vec![Value::Array(vec![
                Value::String("k".into()),
                Value::Number(Number::F64(1.5)),
            ])])
        );
        assert_eq!(Option::<u32>::None.to_json(), Value::Null);
    }
}
