//! A hermetic, API-compatible subset of the `serde` ecosystem.
//!
//! Upstream `serde` separates the data model (the `Serialize` trait)
//! from data formats (`serde_json` et al.). This vendored subset fuses
//! the two into the one format the workspace needs: [`Serialize`]
//! converts a value into the JSON data model ([`json::Value`]), and
//! [`json`] renders/parses that model as text. The derive macro in
//! `serde_derive` generates real field-walking impls, so `#[derive(Serialize)]`
//! annotations keep their upstream shape.
//!
//! Swapping back to registry crates when online: replace the
//! `[workspace.dependencies]` entry with real `serde` (+ `serde_json`),
//! and change `serde::json::to_string(&v)` call sites to
//! `serde_json::to_string(&v)` — the derive annotations need no edits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The derive emits `impl ::serde::Serialize`; make that path resolve
// inside this crate's own tests too.
extern crate self as serde;

pub mod json;

/// Types that can be converted into the JSON data model.
///
/// Derivable for structs and enums via `#[derive(Serialize)]`; manual
/// impls are the escape hatch for types whose wire form differs from
/// their field layout (e.g. nanosecond newtypes).
pub trait Serialize {
    /// Convert `self` into a [`json::Value`] tree.
    fn to_json(&self) -> json::Value;
}

/// Types that can be reconstructed from the JSON data model — the
/// inverse of [`Serialize`].
///
/// Derivable via `#[derive(Deserialize)]` with the same shape mapping
/// the `Serialize` derive uses (named structs ⇄ objects, newtypes
/// transparent, enums externally tagged). A missing object field is
/// presented to the field's type as [`json::Value::Null`], which is how
/// `Option` fields default to `None` while required fields fail with a
/// typed error.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`json::Value`] tree.
    fn from_json(v: &json::Value) -> Result<Self, DeError>;
}

/// A deserialization failure: what went wrong and where.
///
/// The `path` accumulates outside-in as errors propagate up through
/// [`de_field`] / [`DeError::in_field`], so the final message reads
/// like `at traffic.poisson.load: expected a number`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// Dotted path from the document root to the offending value
    /// (empty at the error site; segments are prepended by callers).
    pub path: String,
    /// What went wrong.
    pub msg: String,
}

impl DeError {
    /// An error at the current location.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError {
            path: String::new(),
            msg: msg.into(),
        }
    }

    /// The standard wrong-type error.
    pub fn expected(what: &str, got: &json::Value) -> DeError {
        DeError::new(format!("expected {what}, got {}", kind_name(got)))
    }

    /// Prepend a path segment (a field name or index).
    pub fn in_field(mut self, seg: &str) -> DeError {
        if self.path.is_empty() {
            self.path = seg.to_string();
        } else {
            self.path = format!("{seg}.{}", self.path);
        }
        self
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "at {}: {}", self.path, self.msg)
        }
    }
}

impl std::error::Error for DeError {}

/// The JSON kind of a value, for error messages.
fn kind_name(v: &json::Value) -> &'static str {
    match v {
        json::Value::Null => "null",
        json::Value::Bool(_) => "a boolean",
        json::Value::Number(_) => "a number",
        json::Value::String(_) => "a string",
        json::Value::Array(_) => "an array",
        json::Value::Object(_) => "an object",
    }
}

/// Deserialize the field `key` of an object (missing fields read as
/// `Null`), attributing errors to the field's path.
pub fn de_field<T: Deserialize>(v: &json::Value, key: &str) -> Result<T, DeError> {
    if !v.is_object() {
        return Err(DeError::expected("an object", v));
    }
    T::from_json(v.get(key).unwrap_or(&json::Value::Null)).map_err(|e| e.in_field(key))
}

/// Parse a JSON document straight into a `Deserialize` type.
pub fn from_json_str<T: Deserialize>(text: &str) -> Result<T, DeError> {
    let v = json::from_str(text).map_err(|e| DeError::new(e.to_string()))?;
    T::from_json(&v)
}

pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// Blanket impls for std types.
// ---------------------------------------------------------------------

use json::{Number, Value};

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            // Canonical form matches the parser (which yields U64 for
            // any non-negative literal): without this, a serialized
            // `i64` of 5 would compare unequal to its own parse.
            fn to_json(&self) -> Value {
                if *self >= 0 {
                    Value::Number(Number::U64(*self as u64))
                } else {
                    Value::Number(Number::I64(*self as i64))
                }
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------

macro_rules! impl_deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::expected("a non-negative integer", v))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        "{n} out of range for a {}-bit unsigned integer",
                        <$t>::BITS
                    ))
                })
            }
        }
    )*};
}
impl_deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Number(Number::I64(i)) => *i,
                    Value::Number(Number::U64(u)) => i64::try_from(*u)
                        .map_err(|_| DeError::new(format!("{u} out of range for i64")))?,
                    _ => return Err(DeError::expected("an integer", v)),
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        "{n} out of range for a {}-bit signed integer",
                        <$t>::BITS
                    ))
                })
            }
        }
    )*};
}
impl_deserialize_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("a number", v))
    }
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("a boolean", v)),
        }
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("a string", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("an array", v))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| e.in_field(&format!("[{i}]"))))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::json::{Number, Value};
    use super::{de_field, DeError, Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Named {
        a: u32,
        b: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Newtype(u8);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Pair(u8, u8);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        A,
        B(u32),
        C { x: u8 },
    }

    #[test]
    fn derive_walks_named_fields() {
        let v = Named {
            a: 7,
            b: "hi".into(),
        }
        .to_json();
        assert_eq!(
            v,
            Value::Object(vec![
                ("a".into(), Value::Number(Number::U64(7))),
                ("b".into(), Value::String("hi".into())),
            ])
        );
    }

    #[test]
    fn derive_handles_tuples_and_enums() {
        assert_eq!(Newtype(3).to_json(), Value::Number(Number::U64(3)));
        assert_eq!(
            Pair(1, 2).to_json(),
            Value::Array(vec![
                Value::Number(Number::U64(1)),
                Value::Number(Number::U64(2))
            ])
        );
        assert_eq!(Kind::A.to_json(), Value::String("A".into()));
        assert_eq!(
            Kind::B(9).to_json(),
            Value::Object(vec![("B".into(), Value::Number(Number::U64(9)))])
        );
        assert_eq!(
            Kind::C { x: 1 }.to_json(),
            Value::Object(vec![(
                "C".into(),
                Value::Object(vec![("x".into(), Value::Number(Number::U64(1)))])
            )])
        );
    }

    #[test]
    fn signed_integers_round_trip_by_value() {
        // Non-negative signed values canonicalize to U64, matching the
        // parser, so serialize → parse compares equal at value level.
        for v in [-3i64, 0, 5, i64::MAX, i64::MIN] {
            let val = v.to_json();
            let text = crate::json::to_string(&val);
            assert_eq!(crate::json::from_str(&text).unwrap(), val, "for {v}");
        }
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct WithOption {
        required: u32,
        maybe: Option<String>,
        list: Vec<i64>,
    }

    #[test]
    fn derive_deserialize_round_trips_every_shape() {
        let named = Named {
            a: 7,
            b: "hi".into(),
        };
        assert_eq!(Named::from_json(&named.to_json()).unwrap(), named);
        assert_eq!(
            Newtype::from_json(&Newtype(3).to_json()).unwrap(),
            Newtype(3)
        );
        assert_eq!(Pair::from_json(&Pair(1, 2).to_json()).unwrap(), Pair(1, 2));
        for k in [Kind::A, Kind::B(9), Kind::C { x: 1 }] {
            assert_eq!(Kind::from_json(&k.to_json()).unwrap(), k);
        }
        let w = WithOption {
            required: 1,
            maybe: None,
            list: vec![-4, 5],
        };
        assert_eq!(WithOption::from_json(&w.to_json()).unwrap(), w);
    }

    #[test]
    fn deserialize_missing_fields_and_errors_carry_paths() {
        // Missing Option → None; missing required → typed error naming
        // the field.
        let v = crate::json::from_str(r#"{"required": 2, "list": []}"#).unwrap();
        let w = WithOption::from_json(&v).unwrap();
        assert_eq!(w.maybe, None);
        let bad = crate::json::from_str(r#"{"list": []}"#).unwrap();
        let err = WithOption::from_json(&bad).unwrap_err();
        assert_eq!(err.path, "required");
        assert!(err.to_string().contains("at required:"), "{err}");
        // Element errors carry the index.
        let bad = crate::json::from_str(r#"{"required": 1, "list": [1, "x"]}"#).unwrap();
        let err = WithOption::from_json(&bad).unwrap_err();
        assert_eq!(err.path, "list.[1]");
        // Unknown enum variants are named.
        let err = Kind::from_json(&Value::String("Z".into())).unwrap_err();
        assert!(err.msg.contains("unknown Kind variant 'Z'"), "{}", err.msg);
        // Wrong arity on a tuple struct.
        let err = Pair::from_json(&Value::Array(vec![Value::Number(Number::U64(1))]));
        assert!(err.unwrap_err().msg.contains("expected 2 elements"));
        // Integer range checks.
        let err = u8::from_json(&Value::Number(Number::U64(300))).unwrap_err();
        assert!(err.msg.contains("out of range"), "{}", err.msg);
    }

    #[test]
    fn de_field_rejects_non_objects() {
        let err = de_field::<u32>(&Value::Array(vec![]), "k").unwrap_err();
        assert!(err.msg.contains("expected an object"), "{}", err.msg);
        assert_eq!(DeError::new("m").in_field("b").in_field("a").path, "a.b");
    }

    #[test]
    fn std_impls_compose() {
        let v = vec![(String::from("k"), 1.5f64)].to_json();
        assert_eq!(
            v,
            Value::Array(vec![Value::Array(vec![
                Value::String("k".into()),
                Value::Number(Number::F64(1.5)),
            ])])
        );
        assert_eq!(Option::<u32>::None.to_json(), Value::Null);
    }
}
