//! A hermetic, API-compatible subset of the `serde` crate.
//!
//! Provides the [`Serialize`] marker trait and its derive macro so
//! report types keep their upstream-shaped annotations. No data formats
//! are vendored; rendering in this workspace goes through hand-written
//! text/JSON emitters. Swapping the workspace dependency back to real
//! `serde` requires no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The derive emits `impl ::serde::Serialize`; make that path resolve
// inside this crate's own tests too.
extern crate self as serde;

/// Marker for serializable types. The derive emits an empty impl; the
/// trait exists so bounds like `T: Serialize` compile unchanged.
pub trait Serialize {}

pub use serde_derive::Serialize;

#[cfg(test)]
mod tests {
    use super::Serialize;

    #[derive(Serialize)]
    struct Named {
        _a: u32,
        _b: String,
    }

    #[derive(Serialize)]
    struct Tuple(#[allow(dead_code)] u8, #[allow(dead_code)] u8);

    #[derive(Serialize)]
    enum Kind {
        _A,
        _B(u32),
    }

    fn assert_serialize<T: Serialize>() {}

    #[test]
    fn derive_implements_the_marker() {
        assert_serialize::<Named>();
        assert_serialize::<Tuple>();
        assert_serialize::<Kind>();
    }
}
