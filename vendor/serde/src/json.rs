//! The JSON data model: a value tree, a deterministic writer, and a
//! recursive-descent parser.
//!
//! Objects preserve insertion order (a `Vec` of pairs, not a map), so a
//! serialized value renders byte-identically on every run — the
//! experiment harness depends on that for its determinism guarantees.
//! Non-finite floats serialize as `null`, as in `serde_json`.

use crate::Serialize;
use std::fmt::Write as _;

/// A JSON number. Integers keep full 64-bit precision instead of going
/// through `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// This number as `f64` (lossy above 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// True if this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Serialize to compact JSON (no whitespace).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None, 0);
    out
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items, indent, depth, '[', ']', |out, item, d| {
            write_value(out, item, indent, d)
        }),
        Value::Object(pairs) => write_seq(out, pairs, indent, depth, '{', '}', |out, (k, v), d| {
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, indent, d);
        }),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: &[T],
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, &T, usize),
) {
    out.push(open);
    if items.is_empty() {
        out.push(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(v) if !v.is_finite() => out.push_str("null"),
        Number::F64(v) => {
            // `{:?}` is Rust's shortest round-trip float form ("1.0",
            // "0.3", "1e-10"): re-parsing yields the same bits.
            let _ = write!(out, "{v:?}");
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document into a [`Value`]. Trailing non-whitespace is
/// an error.
pub fn from_str(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a \uXXXX low
                                // half in DC00..DFFF, as serde_json does.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        char::from_u32(
                                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole run of plain bytes up to the next
                    // quote/backslash/control in one step: validating
                    // per character would re-scan the remaining input
                    // each time — quadratic on multi-megabyte frames.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    // `pos` can land mid-scalar only if the input is
                    // invalid UTF-8 (the delimiters are all ASCII), and
                    // from_utf8 rejects exactly that case.
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if float {
            text.parse::<f64>()
                .map(|v| Value::Number(Number::F64(v)))
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(|v| Value::Number(Number::I64(v)))
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(|v| Value::Number(Number::U64(v)))
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_is_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::U64(1))),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v), r#"{"a":1,"b":[true,null]}"#);
        assert_eq!(
            to_string_pretty(&v),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn floats_round_trip_shortest() {
        assert_eq!(to_string(&0.3f64), "0.3");
        assert_eq!(to_string(&1.0f64), "1.0");
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&1e-10f64), "1e-10");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Value::Object(vec![
            ("id".into(), Value::String("Figure 1\n\"q\"".into())),
            (
                "rows".into(),
                Value::Array(vec![Value::Object(vec![
                    ("x".into(), Value::Number(Number::F64(2.75))),
                    ("n".into(), Value::Number(Number::U64(u64::MAX))),
                    ("neg".into(), Value::Number(Number::I64(-42))),
                ])]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v), to_string_pretty(&v)] {
            let parsed = from_str(&text).unwrap();
            assert_eq!(parsed, v);
            // And the parse re-renders to the same bytes.
            assert_eq!(to_string(&parsed), to_string(&v));
        }
    }

    #[test]
    fn parse_accepts_standard_json() {
        let v = from_str(r#" { "k" : [ 1 , -2.5e3 , "A😀" ] } "#).unwrap();
        let arr = v.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("A😀"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("123 45").is_err());
        assert!(from_str(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn surrogate_pairs_decode_and_invalid_pairs_fail() {
        // U+1F600 via an escaped surrogate pair.
        assert_eq!(
            from_str(r#""\ud83d\ude00""#).unwrap(),
            Value::String("\u{1F600}".into())
        );
        // A high surrogate not followed by a valid low surrogate (lone,
        // bare char, or wrong second escape) must error, not mis-decode.
        assert!(from_str(r#""\ud800""#).is_err());
        assert!(from_str(r#""\ud800x""#).is_err());
        assert!(from_str(r#""\ud800\ue000""#).is_err());
        assert!(from_str(r#""\udc00""#).is_err());
    }
}
