//! A hermetic, API-compatible subset of the `proptest` crate.
//!
//! Supports the surface the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), integer/float range strategies, `prop::bool::ANY`, tuple
//! strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Unlike upstream, failing cases are **not shrunk** — the failing input
//! is printed as-is. Case generation is deterministic: the RNG is seeded
//! from the test name, so CI failures reproduce locally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The generator handed to strategies; wraps the vendored `SmallRng`.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic per-test generator: seeded from the test's name so
    /// every run (local or CI) explores the same cases.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name: stable across platforms and releases.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// Next raw `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator. Upstream's `Strategy` also carries shrinking
/// machinery; this subset only generates.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

/// Strategy for a fixed value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of values from `element`, with length in `len`.
    ///
    /// Panics on an empty `len` range, matching upstream proptest (which
    /// rejects it) rather than silently reinterpreting it as a fixed length.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(
            len.start < len.end,
            "proptest::collection::vec: empty length range {}..{}",
            len.start,
            len.end
        );
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.0.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Named strategy constants, mirroring upstream's `prop` module paths.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform boolean strategy type.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// Uniform boolean strategy (`prop::bool::ANY`).
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property; on failure the whole case's
/// inputs are reported by the harness. (This subset panics directly.)
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            *l,
            *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!($($fmt)*);
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", *l, *r);
    }};
}

/// Define property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn my_property(x in 0u32..100, flips in prop::bool::ANY) { .. }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            // Re-emit the user's attributes verbatim (upstream behavior):
            // properties write `#[test]` themselves, and extras like
            // `#[ignore]` or `#[cfg(..)]` must survive expansion.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $(let $arg = $arg.clone();)+ $body })
                    );
                    if let Err(err) = result {
                        let msg = err
                            .downcast_ref::<String>()
                            .map(|s| s.as_str())
                            .or_else(|| err.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg,
                            format!(
                                concat!($(stringify!($arg), " = {:?}  ",)+),
                                $($arg),+
                            ),
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0usize..5, 1..10), &mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, tuples, vec, bool.
        #[test]
        fn macro_end_to_end(
            xs in crate::collection::vec((0usize..8, prop::bool::ANY), 1..20),
            k in 1u32..5,
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!((1..5).contains(&k));
            for (i, b) in xs {
                prop_assert!(i < 8);
                let _ = b;
            }
        }
    }
}
