//! Derive macro for the vendored `serde` subset: emits an empty
//! `impl serde::Serialize` for the annotated type. Hand-rolled token
//! scanning (no `syn`/`quote`) keeps the build dependency-free.

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// Derive the `Serialize` marker impl for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter();
    // Scan for the `struct`/`enum`/`union` keyword, then take the name
    // and any generic parameter list that follows it.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let name = name.expect("derive(Serialize): no type name found");
    let generics = collect_generics(tokens);
    let (params, args) = split_generics(&generics);
    format!("impl{params} ::serde::Serialize for {name}{args} {{}}")
        .parse()
        .expect("derive(Serialize): generated impl must parse")
}

/// Collect the raw `<...>` generic tokens following the type name, if
/// any, stopping at the body/where-clause.
fn collect_generics(tokens: impl Iterator<Item = TokenTree>) -> String {
    let mut out = String::new();
    let mut depth = 0i32;
    for tt in tokens {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                out.push('<');
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                out.push('>');
                if depth == 0 {
                    break;
                }
            }
            _ if depth == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '\'' => out.push('\''),
            _ => {
                out.push_str(&tt.to_string());
                out.push(' ');
            }
        }
    }
    out
}

/// From raw generics like `<'a, T: Clone, const N: usize>`, build the
/// impl parameter list (as-is) and the type argument list (names only).
fn split_generics(generics: &str) -> (String, String) {
    if generics.is_empty() {
        return (String::new(), String::new());
    }
    let inner = generics
        .trim_start_matches('<')
        .trim_end_matches('>')
        .trim();
    let mut args = Vec::new();
    for param in split_top_level(inner) {
        let param = param.trim();
        if param.is_empty() {
            continue;
        }
        let head = param.split(':').next().unwrap_or(param).trim();
        let name = head.strip_prefix("const ").map(str::trim).unwrap_or(head);
        args.push(name.to_string());
    }
    (generics.to_string(), format!("<{}>", args.join(", ")))
}

/// Split on commas not nested inside `<>`/`()`/`[]`.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '<' | '(' | '[' => {
                depth += 1;
                cur.push(c);
            }
            '>' | ')' | ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}
