//! Derive macros for the vendored `serde` subset: generate real
//! field-walking `impl serde::Serialize` / `impl serde::Deserialize`
//! (to/from the JSON data model) for structs and enums. Hand-rolled
//! token scanning (no `syn`/`quote`) keeps the build dependency-free.
//!
//! Mapping (mirrors `serde_json`'s defaults, both directions):
//! - named-field struct → object in declaration order
//! - newtype struct → the inner value
//! - tuple struct → array
//! - unit struct → `null`
//! - unit enum variant → the variant name as a string
//! - data-carrying variant → externally tagged: `{"Variant": ...}`
//!
//! On the `Deserialize` side a missing object field reads as `null`
//! (so `Option` fields default to `None` and required fields produce a
//! typed `DeError`), and unknown fields are ignored, as upstream does
//! by default.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the type a derive is applied to.
struct TypeDef {
    /// `"struct"` or `"enum"`.
    kind: String,
    /// Type name.
    name: String,
    /// Impl parameter list with the given trait bound added.
    params: String,
    /// Type argument list.
    args: String,
    /// Tokens after the name + generics (the body).
    rest: Vec<TokenTree>,
}

/// Scan the common prefix of a type definition: attributes, visibility,
/// `struct`/`enum` keyword, name, generics.
fn parse_type_def(input: TokenStream, bound: &str, derive: &str) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility, find `struct`/`enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    i += 1;
                    break kw;
                }
                if kw == "union" {
                    panic!("derive({derive}): unions are not supported");
                }
                i += 1;
            }
            Some(_) => i += 1,
            None => panic!("derive({derive}): no type definition found"),
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(n)) => n.to_string(),
        _ => panic!("derive({derive}): no type name found"),
    };
    i += 1;

    let (generics, after_generics) = collect_generics(&tokens, i);
    let (params, args) = split_generics(&generics, bound);
    TypeDef {
        kind,
        name,
        params,
        args,
        rest: tokens[after_generics..].to_vec(),
    }
}

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input, "::serde::Serialize", "Serialize");
    let body = match def.kind.as_str() {
        "struct" => struct_body(&def.rest),
        _ => enum_body(&def.name, &def.rest),
    };
    let (name, params, args) = (&def.name, &def.params, &def.args);
    format!(
        "impl{params} ::serde::Serialize for {name}{args} {{\n\
         \x20   fn to_json(&self) -> ::serde::json::Value {{\n\
         {body}\n\
         \x20   }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl must parse")
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input, "::serde::Deserialize", "Deserialize");
    let body = match def.kind.as_str() {
        "struct" => de_struct_body(&def.name, &def.rest),
        _ => de_enum_body(&def.name, &def.rest),
    };
    let (name, params, args) = (&def.name, &def.params, &def.args);
    format!(
        "impl{params} ::serde::Deserialize for {name}{args} {{\n\
         \x20   fn from_json(v: &::serde::json::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         \x20   }}\n\
         }}"
    )
    .parse()
    .expect("derive(Deserialize): generated impl must parse")
}

/// Body for a struct definition (everything after name + generics).
/// A tuple struct's parens come right away; a named body's brace group
/// may sit behind a `where` clause, so scan for it.
fn struct_body(rest: &[TokenTree]) -> String {
    let named = rest
        .iter()
        .find(|tt| matches!(tt, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace));
    match named.or(rest.first()) {
        // Named fields: { a: T, b: U } → ordered object.
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = named_fields(g.stream());
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_json(&self.{f}))"))
                .collect();
            format!(
                "        ::serde::json::Value::Object(vec![{}])",
                pairs.join(", ")
            )
        }
        // Tuple struct: newtype serializes transparently, larger as array.
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = top_level_chunks(g.stream())
                .iter()
                .filter(|c| !c.is_empty())
                .count();
            match n {
                0 => "        ::serde::json::Value::Null".to_string(),
                1 => "        ::serde::Serialize::to_json(&self.0)".to_string(),
                n => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                        .collect();
                    format!(
                        "        ::serde::json::Value::Array(vec![{}])",
                        items.join(", ")
                    )
                }
            }
        }
        // Unit struct.
        _ => "        ::serde::json::Value::Null".to_string(),
    }
}

/// Body for an enum definition: a match over the variants.
fn enum_body(name: &str, rest: &[TokenTree]) -> String {
    let Some(TokenTree::Group(g)) = rest.first() else {
        panic!("derive(Serialize): enum without a body");
    };
    let mut arms = Vec::new();
    for chunk in top_level_chunks(g.stream()) {
        let Some(variant) = parse_variant(&chunk) else {
            continue;
        };
        let arm = match variant.shape {
            VariantShape::Unit => format!(
                "{name}::{v} => ::serde::json::Value::String(\"{v}\".to_string()),",
                v = variant.name
            ),
            VariantShape::Tuple(1) => format!(
                "{name}::{v}(f0) => ::serde::json::Value::Object(vec![(\"{v}\".to_string(), \
                 ::serde::Serialize::to_json(f0))]),",
                v = variant.name
            ),
            VariantShape::Tuple(n) => {
                let binds: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_json({b})"))
                    .collect();
                format!(
                    "{name}::{v}({binds}) => ::serde::json::Value::Object(vec![(\"{v}\"\
                     .to_string(), ::serde::json::Value::Array(vec![{items}]))]),",
                    v = variant.name,
                    binds = binds.join(", "),
                    items = items.join(", ")
                )
            }
            VariantShape::Struct(ref fields) => {
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_json({f}))"))
                    .collect();
                format!(
                    "{name}::{v} {{ {binds} }} => ::serde::json::Value::Object(vec![(\"{v}\"\
                     .to_string(), ::serde::json::Value::Object(vec![{pairs}]))]),",
                    v = variant.name,
                    binds = fields.join(", "),
                    pairs = pairs.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!(
        "        match self {{\n            {}\n        }}",
        arms.join("\n            ")
    )
}

/// Body of `from_json` for a struct definition.
fn de_struct_body(name: &str, rest: &[TokenTree]) -> String {
    let named = rest
        .iter()
        .find(|tt| matches!(tt, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace));
    match named.or(rest.first()) {
        // Named fields: read each from the object (missing → Null).
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = named_fields(g.stream());
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(v, \"{f}\")?"))
                .collect();
            format!(
                "        ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        // Tuple struct: newtype is transparent, larger reads an array.
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = top_level_chunks(g.stream())
                .iter()
                .filter(|c| !c.is_empty())
                .count();
            match n {
                0 => de_unit(&format!("{name}()")),
                1 => format!(
                    "        ::std::result::Result::Ok({name}(::serde::Deserialize::from_json(v)?))"
                ),
                n => {
                    let items: Vec<String> = (0..n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_json(&items[{i}])\
                                 .map_err(|e| e.in_field(\"[{i}]\"))?"
                            )
                        })
                        .collect();
                    format!("{}{name}({}))", de_array_prefix("v", n), items.join(", "))
                }
            }
        }
        // Unit struct.
        _ => de_unit(name),
    }
}

/// `from_json` body fragment accepting only `null` (unit structs).
fn de_unit(constructor: &str) -> String {
    format!(
        "        match v {{\n\
         \x20           ::serde::json::Value::Null => \
         ::std::result::Result::Ok({constructor}),\n\
         \x20           other => ::std::result::Result::Err(\
         ::serde::DeError::expected(\"null\", other)),\n\
         \x20       }}"
    )
}

/// Shared prefix reading a fixed-arity JSON array (from the named
/// source expression) into `items`, ending with an open `Ok(` ready for
/// the constructor expression.
fn de_array_prefix(src: &str, n: usize) -> String {
    format!(
        "        let items = {src}.as_array().ok_or_else(|| \
         ::serde::DeError::expected(\"an array\", {src}))?;\n\
         \x20       if items.len() != {n} {{\n\
         \x20           return ::std::result::Result::Err(::serde::DeError::new(\
         format!(\"expected {n} elements, got {{}}\", items.len())));\n\
         \x20       }}\n\
         \x20       ::std::result::Result::Ok("
    )
}

/// Body of `from_json` for an enum: unit variants from strings,
/// data-carrying variants from single-key (externally tagged) objects.
fn de_enum_body(name: &str, rest: &[TokenTree]) -> String {
    let Some(TokenTree::Group(g)) = rest.first() else {
        panic!("derive(Deserialize): enum without a body");
    };
    let mut unit_arms = Vec::new();
    let mut data_arms = Vec::new();
    for chunk in top_level_chunks(g.stream()) {
        let Some(variant) = parse_variant(&chunk) else {
            continue;
        };
        let v = &variant.name;
        match variant.shape {
            VariantShape::Unit => unit_arms.push(format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
            )),
            VariantShape::Tuple(1) => data_arms.push(format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                 ::serde::Deserialize::from_json(pv).map_err(|e| e.in_field(\"{v}\"))?)),"
            )),
            VariantShape::Tuple(n) => {
                let items: Vec<String> = (0..n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_json(&items[{i}])\
                             .map_err(|e| e.in_field(\"[{i}]\").in_field(\"{v}\"))?"
                        )
                    })
                    .collect();
                data_arms.push(format!(
                    "\"{v}\" => {{\n{}{name}::{v}({}))\n            }}",
                    de_array_prefix("pv", n),
                    items.join(", ")
                ));
            }
            VariantShape::Struct(ref fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::de_field(pv, \"{f}\")\
                             .map_err(|e| e.in_field(\"{v}\"))?"
                        )
                    })
                    .collect();
                data_arms.push(format!(
                    "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                    inits.join(", ")
                ));
            }
        }
    }
    let unknown_expr = format!(
        "::std::result::Result::Err(::serde::DeError::new(\
         format!(\"unknown {name} variant '{{other}}'\")))"
    );
    let string_arm = if unit_arms.is_empty() {
        format!("::serde::json::Value::String(s) => {{ let other = s.as_str(); {unknown_expr} }}")
    } else {
        format!(
            "::serde::json::Value::String(s) => match s.as_str() {{\n                {}\n                other => {unknown_expr},\n            }},",
            unit_arms.join("\n                ")
        )
    };
    let object_arm = if data_arms.is_empty() {
        String::new()
    } else {
        format!(
            "::serde::json::Value::Object(pairs) if pairs.len() == 1 => {{\n\
             \x20           let (k, pv) = &pairs[0];\n\
             \x20           match k.as_str() {{\n                {}\n                other => {unknown_expr},\n\
             \x20           }}\n\
             \x20       }}",
            data_arms.join("\n                ")
        )
    };
    format!(
        "        match v {{\n\
         \x20           {string_arm}\n\
         \x20           {object_arm}\n\
         \x20           other => ::std::result::Result::Err(::serde::DeError::expected(\
         \"a variant name or single-variant object\", other)),\n\
         \x20       }}"
    )
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

/// Parse one enum-variant chunk: attrs, name, optional payload.
fn parse_variant(chunk: &[TokenTree]) -> Option<Variant> {
    let mut i = skip_attrs(chunk, 0);
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return None,
    };
    i += 1;
    let shape = match chunk.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = top_level_chunks(g.stream())
                .iter()
                .filter(|c| !c.is_empty())
                .count();
            if n == 0 {
                VariantShape::Unit
            } else {
                VariantShape::Tuple(n)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            VariantShape::Struct(named_fields(g.stream()))
        }
        // Bare name or `= discriminant`.
        _ => VariantShape::Unit,
    };
    Some(Variant { name, shape })
}

/// Field names of a named-field body, in declaration order.
fn named_fields(stream: TokenStream) -> Vec<String> {
    top_level_chunks(stream)
        .iter()
        .filter_map(|chunk| {
            let mut i = skip_attrs(chunk, 0);
            // Skip visibility: `pub`, optionally `pub(...)`.
            if matches!(chunk.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
                i += 1;
                if matches!(chunk.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

/// Advance past `#[...]` attribute groups.
fn skip_attrs(chunk: &[TokenTree], mut i: usize) -> usize {
    while matches!(chunk.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#')
        && matches!(chunk.get(i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Split a token stream into chunks at top-level commas.
fn top_level_chunks(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().unwrap().push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Collect the raw `<...>` generic tokens at `tokens[start..]`, if any.
/// Returns the generics text and the index just past them.
fn collect_generics(tokens: &[TokenTree], start: usize) -> (String, usize) {
    let mut out = String::new();
    let mut depth = 0i32;
    let mut i = start;
    while let Some(tt) = tokens.get(i) {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                out.push('<');
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                out.push('>');
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            _ if depth == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '\'' => out.push('\''),
            _ => {
                out.push_str(&tt.to_string());
                out.push(' ');
            }
        }
        i += 1;
    }
    (out, i)
}

/// From raw generics like `<'a, T: Clone, const N: usize>`, build the
/// impl parameter list (type params gain the given trait bound) and the
/// type argument list (names only).
fn split_generics(generics: &str, bound: &str) -> (String, String) {
    if generics.is_empty() {
        return (String::new(), String::new());
    }
    let inner = generics
        .trim_start_matches('<')
        .trim_end_matches('>')
        .trim();
    let mut params = Vec::new();
    let mut args = Vec::new();
    for param in split_top_level(inner) {
        let param = param.trim();
        if param.is_empty() {
            continue;
        }
        let head = param.split(':').next().unwrap_or(param).trim();
        if param.starts_with('\'') || param.starts_with("const ") {
            let name = head.strip_prefix("const ").map(str::trim).unwrap_or(head);
            args.push(name.to_string());
            params.push(param.to_string());
        } else {
            args.push(head.to_string());
            if param.contains(':') {
                params.push(format!("{param} + {bound}"));
            } else {
                params.push(format!("{param}: {bound}"));
            }
        }
    }
    (
        format!("<{}>", params.join(", ")),
        format!("<{}>", args.join(", ")),
    )
}

/// Split on commas not nested inside `<>`/`()`/`[]`.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '<' | '(' | '[' => {
                depth += 1;
                cur.push(c);
            }
            '>' | ')' | ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}
