//! A hermetic, API-compatible subset of the `criterion` crate.
//!
//! Implements the benchmark surface the workspace uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros —
//! with honest wall-clock measurement (warmup + N samples, reporting
//! min/mean) and plain-text output. No plotting, no statistics beyond
//! the summary, no `target/criterion` reports.
//!
//! `--bench` and a name filter on `argv` are honoured so `cargo bench`
//! and `cargo bench -- <filter>` behave as expected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark (reported per-iteration).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to batch per measured call in
/// [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small routine output; batch many per setup.
    SmallInput,
    /// Medium routine output.
    MediumInput,
    /// Large routine output; one per setup.
    LargeInput,
}

impl BatchSize {
    /// Routine calls timed per sample window; the recorded sample is
    /// the window divided by this, so nanosecond-scale routines are not
    /// swamped by `Instant` overhead (one now()/elapsed() pair costs
    /// tens of ns — more than some benched routines).
    fn iters_per_sample(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::MediumInput => 16,
            BatchSize::LargeInput => 1,
        }
    }
}

/// Passed to every benchmark closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Time `routine`. Each sample times a calibrated block of calls in
    /// one `Instant` window and divides by the block size, so sub-µs
    /// routines are not dominated by timer overhead/resolution. The
    /// calibration pass doubles as warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        const TARGET_WINDOW: Duration = Duration::from_micros(10);
        const MAX_ITERS: u64 = 1 << 20;
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            if start.elapsed() >= TARGET_WINDOW || iters >= MAX_ITERS {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(Duration::from_secs_f64(
                elapsed.as_secs_f64() / iters as f64,
            ));
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from measurement. Each sample pre-builds a batch of
    /// inputs (sized by `size`), times the whole batch in one `Instant`
    /// window and divides by the batch size.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let batch = size.iters_per_sample();
        black_box(routine(setup())); // warmup + forces compilation of the path
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            self.samples.push(Duration::from_secs_f64(
                elapsed.as_secs_f64() / batch as f64,
            ));
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = *samples.iter().min().expect("non-empty");
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let mut line = format!(
        "{name:<40} time: [min {} mean {}] ({} samples)",
        format_duration(min),
        format_duration(mean),
        samples.len()
    );
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  thrpt: {:.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// The benchmark manager: owns CLI filtering and default settings.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; `--bench`/`--test` flags come from the harness.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            filter,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Upstream reads CLI options here; the subset already did in
    /// `default()`, so this is identity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Set the default number of measured samples per benchmark
    /// (builder form, used by `criterion_group!`'s `config = ..`).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Run a standalone benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        if self.matches(id) {
            let mut b = Bencher::new(self.sample_size);
            f(&mut b);
            report(id, &b.samples, None);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        if self.criterion.matches(&full) {
            let n = self.sample_size.unwrap_or(self.criterion.sample_size);
            let mut b = Bencher::new(n);
            f(&mut b);
            report(&full, &b.samples, self.throughput);
        }
        self
    }

    /// Finish the group (no-op beyond upstream API compatibility).
    pub fn finish(self) {}
}

/// Define a benchmark group function from target functions. Both the
/// short form and the `name/config/targets` long form are supported.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $group;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
    (
        name = $group:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
        };
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // Calibration (>= 1 call) + 3 samples of >= 1 call each; the
        // exact count depends on how far calibration scales the block.
        assert!(runs >= 4, "expected at least 4 runs, got {runs}");
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion {
            filter: None,
            sample_size: 10,
        };
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2).throughput(Throughput::Elements(5));
            g.bench_function("inner", |b| {
                b.iter_batched(
                    || 1u64,
                    |x| {
                        runs += 1;
                        x + 1
                    },
                    BatchSize::SmallInput,
                )
            });
            g.finish();
        }
        // 1 warmup + 2 samples x one SmallInput batch each.
        let batch = BatchSize::SmallInput.iters_per_sample() as u32;
        assert_eq!(runs, 1 + 2 * batch);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            sample_size: 3,
        };
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
